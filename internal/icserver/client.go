package icserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"icsched/internal/dag"
)

// ErrCrash, when returned by a Compute function, makes the client vanish
// immediately without reporting anything to the server — simulating a
// crashed client, whose task the server recovers via lease expiry.  Used
// by fault-injection harnesses.
var ErrCrash = errors.New("icserver: client crashed")

// Client is a remote IC client: it polls the server for work, runs the
// task function, and reports completions, until the server says the
// computation is finished.
//
// The client survives the transient failures of a real network: /task and
// /done requests that fail in transit or return 5xx are retried with
// exponential backoff and jitter — crucially, a failed /done is retried
// for the same task (resuming the in-flight task) rather than abandoning
// it, and the server's idempotent completion absorbs duplicates when only
// the response was lost.  A Compute error hands the task back to the
// server via POST /failed and the client moves on to other work.
type Client struct {
	// BaseURL of the server (e.g. an httptest.Server URL).
	BaseURL string
	// HTTP is the transport (defaults to http.DefaultClient).
	HTTP *http.Client
	// Compute executes one task.  A plain error hands the task back via
	// /failed; ErrCrash makes the client vanish without reporting.
	Compute func(task dag.NodeID, name string) error
	// IdleWait is the initial sleep when the server has nothing eligible
	// (default 2ms).  Consecutive idle polls back off exponentially with
	// jitter up to IdleWaitMax, so large idle fleets neither busy-poll
	// nor synchronize-hammer the server.
	IdleWait time.Duration
	// IdleWaitMax caps the idle backoff (default 250ms).
	IdleWaitMax time.Duration
	// RetryWait is the initial backoff after a transient request failure
	// (default 5ms), growing exponentially with jitter up to RetryWaitMax.
	RetryWait time.Duration
	// RetryWaitMax caps the retry backoff (default 500ms).
	RetryWaitMax time.Duration
	// MaxAttempts bounds tries per request, first included (default 8);
	// when exhausted Run returns the last error.
	MaxAttempts int
	// Batch switches the client to the batched wire protocol (POST /tasks
	// + POST /report) with this cap on tasks per grant.  Zero (or
	// negative) keeps the legacy one-task-per-round-trip protocol.  The
	// batched client keeps a local task queue: it computes every granted
	// task, then acks the whole batch — completions and failures mixed —
	// in one /report, so the scheduler lock and the HTTP round-trip are
	// amortized over the batch.  The ask is sized adaptively: it starts at
	// 1, doubles after every full grant up to Batch, holds steady on a
	// short grant (the server clamps over-asks to the eligible prefix, so
	// a big ask costs nothing), and resets to 1 after an empty grant so an
	// idle client probes gently.
	Batch int
	// ID names this client.  It is sent as the X-IC-Client header on
	// every POST so server-side traces attribute events per client.
	ID string
	// Seed seeds the jitter rng.  Zero assigns the next per-process
	// default seed, so even an unconfigured fleet backs off
	// deterministically run to run; harnesses that replay faults
	// (internal/chaos) set explicit per-client seeds.
	Seed int64

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// clientSeq hands out default jitter seeds: the n-th Client that first
// jitters without an explicit Seed gets seed n.  A process that builds
// its fleet in a fixed order therefore gets identical jitter sequences
// on every run — unlike the old global-rand seeding, which made two
// same-seed chaos runs diverge.
var clientSeq atomic.Int64

// Stats reports one client's activity.
type Stats struct {
	// Completed counts tasks this client computed and reported done.
	Completed int
	// IdlePolls counts /task polls that found nothing eligible.
	IdlePolls int
	// Retries counts transient request failures that were retried.
	Retries int
	// Failed counts tasks handed back (via /failed, or in a /report
	// batch) after a Compute error.
	Failed int
	// Batches counts /tasks grants that returned at least one task
	// (always zero under the legacy protocol).
	Batches int
	// Resyncs counts stale-epoch rejections handled: the server restarted
	// under a bumped fencing token and the client re-read the epoch (GET
	// /status) and re-sent its report under it.
	Resyncs int
}

func (c *Client) defaults() (idle, idleMax, retry, retryMax time.Duration, attempts int, httpc *http.Client) {
	idle, idleMax, retry, retryMax = c.IdleWait, c.IdleWaitMax, c.RetryWait, c.RetryWaitMax
	if idle <= 0 {
		idle = 2 * time.Millisecond
	}
	if idleMax <= 0 {
		idleMax = 250 * time.Millisecond
	}
	if idleMax < idle {
		idleMax = idle
	}
	if retry <= 0 {
		retry = 5 * time.Millisecond
	}
	if retryMax <= 0 {
		retryMax = 500 * time.Millisecond
	}
	if retryMax < retry {
		retryMax = retry
	}
	attempts = c.MaxAttempts
	if attempts <= 0 {
		attempts = 8
	}
	httpc = c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return
}

// jitter picks a uniform duration in [d/2, d) — "equal jitter", which
// decorrelates a fleet of clients that went idle at the same moment.
// The rng is seeded deterministically (Seed, or the next per-process
// default) and initialized race-safely, so concurrent use of one client
// and replay harnesses both behave.
func (c *Client) jitter(d time.Duration) time.Duration {
	c.rngOnce.Do(func() {
		seed := c.Seed
		if seed == 0 {
			seed = clientSeq.Add(1)
		}
		c.rng = rand.New(rand.NewSource(seed))
	})
	half := d / 2
	if half <= 0 {
		return d
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return half + time.Duration(c.rng.Int63n(int64(half)))
}

// isStaleEpoch reports whether a response is the server's typed 409
// stale-epoch rejection (as opposed to an ordinary 409 state conflict).
func isStaleEpoch(code int, body []byte) bool {
	if code != http.StatusConflict {
		return false
	}
	var rej staleEpochResponse
	return json.Unmarshal(body, &rej) == nil && rej.Error == staleEpochError
}

// resyncEpoch refreshes the client's fencing token after a stale-epoch
// rejection: per protocol via GET /status, falling back to the epoch
// carried in the rejection body when /status is unreachable (the server
// may be mid-restart again).
func (c *Client) resyncEpoch(ctx context.Context, httpc *http.Client, body []byte, stats *Stats) (uint64, error) {
	stats.Resyncs++
	if st, err := FetchStatus(ctx, httpc, c.BaseURL); err == nil && st.Epoch != 0 {
		return st.Epoch, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var rej staleEpochResponse
	if json.Unmarshal(body, &rej) == nil && rej.Epoch != 0 {
		return rej.Epoch, nil
	}
	return 0, fmt.Errorf("icserver client: stale-epoch rejection without a recoverable epoch")
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Run loops until the computation finishes, the context is cancelled,
// retries are exhausted, or Compute crashes.  With Batch > 0 it speaks
// the batched protocol; otherwise the legacy one-task-per-round-trip one.
func (c *Client) Run(ctx context.Context) (Stats, error) {
	if c.Batch > 0 {
		return c.runBatched(ctx)
	}
	idleBase, idleMax, retryBase, retryMax, maxAttempts, httpc := c.defaults()
	var stats Stats
	var epoch uint64 // fencing token of the last grant; 0 until first grant
	idle := idleBase
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		code, body, err := c.postRetry(ctx, httpc, "/task", nil, retryBase, retryMax, maxAttempts, &stats)
		if err != nil {
			return stats, err
		}
		switch code {
		case http.StatusGone:
			return stats, nil
		case http.StatusNoContent:
			stats.IdlePolls++
			if err := sleepCtx(ctx, c.jitter(idle)); err != nil {
				return stats, err
			}
			if idle *= 2; idle > idleMax {
				idle = idleMax
			}
			continue
		case http.StatusOK:
			idle = idleBase // got work: reset the idle backoff
		default:
			return stats, fmt.Errorf("icserver client: /task returned %d: %s", code, body)
		}
		var task taskResponse
		if err := json.Unmarshal(body, &task); err != nil {
			return stats, fmt.Errorf("icserver client: %w", err)
		}
		if task.Epoch != 0 {
			epoch = task.Epoch
		}
		if c.Compute != nil {
			if err := c.Compute(task.Task, task.Name); err != nil {
				if errors.Is(err, ErrCrash) {
					return stats, err // vanish: no report, lease expiry recovers
				}
				// Hand the task back early so the server requeues it now
				// instead of waiting out the lease.
				if epoch, err = c.postFenced(ctx, httpc, "/failed", task.Task, epoch,
					retryBase, retryMax, maxAttempts, &stats); err != nil {
					return stats, err
				}
				stats.Failed++
				continue
			}
		}
		var err2 error
		if epoch, err2 = c.postFenced(ctx, httpc, "/done", task.Task, epoch,
			retryBase, retryMax, maxAttempts, &stats); err2 != nil {
			return stats, err2
		}
		stats.Completed++
	}
}

// postFenced sends a single-task report (/done or /failed) carrying the
// client's fencing token, resyncing and re-sending across server epoch
// bumps: a stale-epoch 409 means the server restarted since the grant,
// so the client re-reads the epoch and repeats the report under it —
// the restarted server either applies it (the task came back requeued)
// or absorbs it as an idempotent duplicate (it was journaled before the
// crash).  Returns the adopted epoch.
func (c *Client) postFenced(ctx context.Context, httpc *http.Client, path string, task dag.NodeID, epoch uint64,
	retryBase, retryMax time.Duration, attempts int, stats *Stats) (uint64, error) {
	for try := 0; try < attempts; try++ {
		payload, err := json.Marshal(doneRequest{Task: task, Epoch: epoch})
		if err != nil {
			return epoch, err
		}
		code, body, err := c.postRetry(ctx, httpc, path, payload, retryBase, retryMax, attempts, stats)
		if err != nil {
			return epoch, err
		}
		if isStaleEpoch(code, body) {
			if epoch, err = c.resyncEpoch(ctx, httpc, body, stats); err != nil {
				return epoch, err
			}
			continue
		}
		if code != http.StatusOK {
			return epoch, fmt.Errorf("icserver client: %s returned %d: %s", path, code, body)
		}
		return epoch, nil
	}
	return epoch, fmt.Errorf("icserver client: %s kept hitting stale epochs after %d resyncs", path, attempts)
}

// runBatched is the batched-protocol loop: ask for up to `ask` tasks in
// one POST /tasks, compute every granted task locally, then ack the
// whole batch — completions and failures mixed — in one POST /report
// that piggybacks the next ask, so the steady state is ONE round trip
// (and one server lock acquisition) per batch.  /tasks is only polled to
// bootstrap and whenever a piggybacked grant comes back empty.  The ask
// adapts: it starts at 1, doubles after a full grant (up to Batch), holds
// steady on a short grant, and resets to 1 after an empty one.  ErrCrash
// from Compute abandons the entire unreported remainder of the batch, so
// lease expiry must recover every task granted to a crashed client.
func (c *Client) runBatched(ctx context.Context) (Stats, error) {
	idleBase, idleMax, retryBase, retryMax, maxAttempts, httpc := c.defaults()
	var stats Stats
	var epoch uint64 // fencing token of the last grant; 0 until first grant
	idle := idleBase
	ask := 1
	var batch []taskResponse // granted but not yet computed
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if len(batch) == 0 {
			// No piggybacked grant in hand: poll /tasks, backing off while
			// the server has nothing eligible.
			payload, err := json.Marshal(tasksRequest{K: ask})
			if err != nil {
				return stats, err
			}
			code, body, err := c.postRetry(ctx, httpc, "/tasks", payload, retryBase, retryMax, maxAttempts, &stats)
			if err != nil {
				return stats, err
			}
			switch code {
			case http.StatusGone:
				return stats, nil
			case http.StatusOK:
			default:
				return stats, fmt.Errorf("icserver client: /tasks returned %d: %s", code, body)
			}
			var grant tasksResponse
			if err := json.Unmarshal(body, &grant); err != nil {
				return stats, fmt.Errorf("icserver client: %w", err)
			}
			if grant.Epoch != 0 {
				epoch = grant.Epoch
			}
			if len(grant.Tasks) == 0 {
				stats.IdlePolls++
				ask = 1 // nothing eligible: next round probes with the minimum ask
				if err := sleepCtx(ctx, c.jitter(idle)); err != nil {
					return stats, err
				}
				if idle *= 2; idle > idleMax {
					idle = idleMax
				}
				continue
			}
			batch = grant.Tasks
		}
		idle = idleBase
		stats.Batches++
		report := reportRequest{}
		for _, task := range batch {
			if c.Compute == nil {
				report.Done = append(report.Done, task.Task)
				continue
			}
			if err := c.Compute(task.Task, task.Name); err != nil {
				if errors.Is(err, ErrCrash) {
					return stats, err // vanish mid-batch: lease expiry recovers the rest
				}
				report.Failed = append(report.Failed, task.Task)
				continue
			}
			report.Done = append(report.Done, task.Task)
		}
		if len(batch) == ask {
			if ask *= 2; ask > c.Batch {
				ask = c.Batch
			}
		}
		// A short grant keeps the ask: over-asking costs nothing (the
		// server clamps the grant to the ELIGIBLE prefix under the same
		// single lock acquisition), while shrinking to the granted count
		// would pin the whole fleet to one-task asks on any dag whose
		// frontier is narrower than clients × Batch.
		report.K = ask // piggyback the next ask on the ack
		var acked reportResponse
		for try := 0; ; try++ {
			report.Epoch = epoch
			payload, err := json.Marshal(report)
			if err != nil {
				return stats, err
			}
			code, body, err := c.postRetry(ctx, httpc, "/report", payload, retryBase, retryMax, maxAttempts, &stats)
			if err != nil {
				return stats, err
			}
			if isStaleEpoch(code, body) {
				// The server restarted since the grant: resync the fencing
				// token and repeat the same report under it.  The recovered
				// server applies it (the tasks came back requeued) or absorbs
				// it as idempotent duplicates (journaled before the crash).
				if try+1 >= maxAttempts {
					return stats, fmt.Errorf("icserver client: /report kept hitting stale epochs after %d resyncs", try+1)
				}
				if epoch, err = c.resyncEpoch(ctx, httpc, body, &stats); err != nil {
					return stats, err
				}
				continue
			}
			if code != http.StatusOK {
				return stats, fmt.Errorf("icserver client: /report returned %d: %s", code, body)
			}
			if err := json.Unmarshal(body, &acked); err != nil {
				return stats, fmt.Errorf("icserver client: %w", err)
			}
			break
		}
		if acked.Epoch != 0 {
			epoch = acked.Epoch
		}
		stats.Completed += len(report.Done)
		stats.Failed += len(report.Failed)
		if acked.Finished {
			return stats, nil // terminal: all tasks done (or degraded)
		}
		batch = acked.Tasks // empty → fall back to the /tasks poll above
	}
}

// postRetry POSTs path, retrying transport errors and 5xx responses with
// capped exponential backoff + jitter.  It returns the first conclusive
// status, or the last failure once attempts are exhausted.
func (c *Client) postRetry(ctx context.Context, httpc *http.Client, path string, body []byte,
	base, max time.Duration, attempts int, stats *Stats) (int, []byte, error) {
	wait := base
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			stats.Retries++
			if err := sleepCtx(ctx, c.jitter(wait)); err != nil {
				return 0, nil, err
			}
			if wait *= 2; wait > max {
				wait = max
			}
		}
		code, respBody, err := post(ctx, httpc, c.BaseURL+path, body, c.ID)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return 0, nil, ctx.Err()
			}
			lastErr = err // transport failure (includes dropped responses)
		case code >= 500:
			lastErr = fmt.Errorf("icserver client: %s returned %d: %s", path, code, respBody)
		default:
			return code, respBody, nil
		}
	}
	return 0, nil, fmt.Errorf("icserver client: %s failed after %d attempts: %w", path, attempts, lastErr)
}

// FetchStatus reads the server's progress snapshot.
func FetchStatus(ctx context.Context, httpc *http.Client, baseURL string) (Status, error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/status", nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// FetchHealth reads the server's /healthz state, reporting the HTTP
// status code alongside the payload (503 while draining).
func FetchHealth(ctx context.Context, httpc *http.Client, baseURL string) (status string, code int, err error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return "", resp.StatusCode, err
	}
	return h.Status, resp.StatusCode, nil
}

func post(ctx context.Context, httpc *http.Client, url string, body []byte, clientID string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if clientID != "" {
		req.Header.Set(clientHeader, clientID)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}
