package icserver

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/sched"
	"icsched/internal/wal"
)

// relaxedTestDag returns a random connected dag and a topological order.
func relaxedTestDag(t *testing.T, seed int64, n int) (*dag.Dag, []dag.NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := dag.RandomConnected(rng, n, 0.15)
	return g, g.TopoOrder()
}

// drainSerial drives a server one grant + immediate completion at a time,
// returning the allocation order.
func drainSerial(t *testing.T, s *Server) []dag.NodeID {
	t.Helper()
	var order []dag.NodeID
	for {
		v, state := s.Allocate()
		if state == AllocFinished {
			return order
		}
		if state != AllocOK {
			t.Fatalf("allocate stalled after %d grants", len(order))
		}
		order = append(order, v)
		if _, err := s.Complete(v); err != nil {
			t.Fatalf("complete %d: %v", v, err)
		}
	}
}

// TestRelaxedK1BitIdenticalSerial is the anchor property of the whole
// relaxed program: with one shard, the relaxed grant path realizes
// exactly the locked scheduler's allocation order.
func TestRelaxedK1BitIdenticalSerial(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g, order := relaxedTestDag(t, seed, 40)
		exact := drainSerial(t, New(g, heur.Static("IC-OPTIMAL", order)))
		relaxed := drainSerial(t, New(g, heur.Static("IC-OPTIMAL", order), WithRelaxed(1)))
		if len(exact) != len(relaxed) {
			t.Fatalf("seed %d: %d vs %d grants", seed, len(exact), len(relaxed))
		}
		for i := range exact {
			if exact[i] != relaxed[i] {
				t.Fatalf("seed %d: grant %d differs: locked %d, relaxed(1) %d",
					seed, i, exact[i], relaxed[i])
			}
		}
	}
}

// TestRelaxedK1BitIdenticalBatched repeats the anchor through the batched
// in-process protocol with varying ask sizes.
func TestRelaxedK1BitIdenticalBatched(t *testing.T) {
	g, order := relaxedTestDag(t, 3, 48)
	drive := func(s *Server) []dag.NodeID {
		var got []dag.NodeID
		rng := rand.New(rand.NewSource(9))
		batch, state := s.AllocateBatch(1 + rng.Intn(4))
		for state == AllocOK {
			got = append(got, batch...)
			var rep BatchReport
			var err error
			rep, batch, state, err = s.ReportAllocate(batch, nil, 1+rng.Intn(4))
			if err != nil {
				t.Fatalf("report: %v", err)
			}
			_ = rep
		}
		return got
	}
	exact := drive(New(g, heur.Static("IC-OPTIMAL", order)))
	rel := drive(New(g, heur.Static("IC-OPTIMAL", order), WithRelaxed(1)))
	if len(exact) != len(rel) || len(exact) != g.NumNodes() {
		t.Fatalf("grant counts: locked %d, relaxed %d, nodes %d", len(exact), len(rel), g.NumNodes())
	}
	for i := range exact {
		if exact[i] != rel[i] {
			t.Fatalf("batched grant %d differs: locked %d, relaxed(1) %d", i, exact[i], rel[i])
		}
	}
}

// TestRelaxedServerSerialAnyK checks that for k in 1..8 a serial drive
// completes every task exactly once in a legal (replayable) order, with
// no stalls and no reissues.
func TestRelaxedServerSerialAnyK(t *testing.T) {
	g, order := relaxedTestDag(t, 11, 60)
	for k := 1; k <= 8; k *= 2 {
		s := New(g, heur.Static("IC-OPTIMAL", order), WithRelaxed(k))
		if s.RelaxedShards() != k {
			t.Fatalf("RelaxedShards() = %d, want %d", s.RelaxedShards(), k)
		}
		got := drainSerial(t, s)
		if err := sched.NewState(g).Replay(got); err != nil {
			t.Fatalf("k=%d: realized order does not replay: %v", k, err)
		}
		st := s.Status()
		if st.Completed != st.Total || st.Quarantined != 0 || st.Reissues != 0 {
			t.Fatalf("k=%d: status %+v", k, st)
		}
		if !s.Finished() {
			t.Fatalf("k=%d: not finished after drain", k)
		}
	}
}

// TestRelaxedConcurrentFleet runs a 16-client batched HTTP fleet against a
// relaxed(4) server and checks full completion with a legal realized
// order (under -race this also exercises the lock-free pop paths).
func TestRelaxedConcurrentFleet(t *testing.T) {
	g, order := relaxedTestDag(t, 21, 120)
	s := New(g, heur.Static("IC-OPTIMAL", order), WithRelaxed(4), WithLease(time.Minute))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var mu sync.Mutex
	var realized []dag.NodeID
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &Client{
				BaseURL: ts.URL,
				Batch:   8,
				Seed:    int64(c + 1),
				Compute: func(task dag.NodeID, name string) error {
					mu.Lock()
					realized = append(realized, task)
					mu.Unlock()
					return nil
				},
			}
			if _, err := cl.Run(context.Background()); err != nil {
				t.Errorf("client %d: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := s.Status()
	if st.Completed != g.NumNodes() || st.Quarantined != 0 {
		t.Fatalf("status %+v", st)
	}
	if len(realized) != g.NumNodes() {
		t.Fatalf("%d computed tasks for %d nodes", len(realized), g.NumNodes())
	}
}

// TestRelaxedFailRequeues: a handed-back task goes through the core and
// is granted again.
func TestRelaxedFailRequeues(t *testing.T) {
	g, order := relaxedTestDag(t, 5, 20)
	s := New(g, heur.Static("IC-OPTIMAL", order), WithRelaxed(4), WithMaxAttempts(3))
	v, state := s.Allocate()
	if state != AllocOK {
		t.Fatalf("first allocate: state %v", state)
	}
	requeued, quarantined, err := s.Fail(v)
	if err != nil || !requeued || quarantined {
		t.Fatalf("fail: requeued=%v quarantined=%v err=%v", requeued, quarantined, err)
	}
	// The failed task must come back; with only sources eligible it may
	// not be first, so drain and watch for it.
	seen := 0
	for {
		w, st := s.Allocate()
		if st != AllocOK {
			t.Fatalf("task %d never reissued", v)
		}
		if w == v {
			seen++
			break
		}
		if _, err := s.Complete(w); err != nil {
			t.Fatal(err)
		}
	}
	if seen != 1 || s.Status().Reissues != 1 {
		t.Fatalf("reissues = %d, want 1", s.Status().Reissues)
	}
}

// TestRelaxedLeaseExpiryAndQuarantine: expired leases are reclaimed into
// the core; once attempts exhaust, the task quarantines and the run ends
// degraded.
func TestRelaxedLeaseExpiryAndQuarantine(t *testing.T) {
	b := dag.NewBuilder(2)
	b.AddArc(0, 1)
	g := b.MustBuild()
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }
	s := New(g, heur.Static("IC-OPTIMAL", []dag.NodeID{0, 1}), WithRelaxed(2),
		WithLease(time.Second), WithMaxAttempts(2), WithClock(now))

	for attempt := 1; attempt <= 2; attempt++ {
		v, state := s.Allocate()
		if state != AllocOK || v != 0 {
			t.Fatalf("attempt %d: got (%d, %v)", attempt, v, state)
		}
		clock = clock.Add(2 * time.Second) // blow the lease
	}
	// Third allocate: reclaim quarantines task 0 (attempts exhausted);
	// nothing else is eligible, nothing in flight -> degraded terminal.
	if _, state := s.Allocate(); state != AllocFinished {
		t.Fatalf("want AllocFinished after quarantine, got %v", state)
	}
	st := s.Status()
	if st.Quarantined != 1 || st.Completed != 0 {
		t.Fatalf("status %+v", st)
	}
	if !s.Finished() {
		t.Fatal("degraded run not finished")
	}
}

// TestRelaxedKillBetweenPopAndJournal aims a Kill into the window between
// the lock-free shard claim and the journal append.  The grant must not
// reach the client, the journal must not contain it, and recovery must
// hand the task out again — nothing lost, nothing duplicated.
func TestRelaxedKillBetweenPopAndJournal(t *testing.T) {
	g, order := relaxedTestDag(t, 31, 24)
	dir := filepath.Join(t.TempDir(), "wal")

	var victim *Server
	var once sync.Once
	var killedTask dag.NodeID
	hook := func(v dag.NodeID) {
		once.Do(func() {
			killedTask = v
			victim.Kill()
		})
	}
	s, err := Recover(dir, g, heur.Static("IC-OPTIMAL", order), wal.Options{},
		WithRelaxed(4), WithRelaxedPopHook(hook))
	if err != nil {
		t.Fatal(err)
	}
	victim = s
	// The very first allocate pops, fires the hook, kills the incarnation
	// mid-window, and must surface no grant.
	if v, state := s.Allocate(); state != AllocEmpty {
		t.Fatalf("allocate on killed server returned (%d, %v)", v, state)
	}

	r, err := Recover(dir, g, heur.Static("IC-OPTIMAL", order), wal.Options{}, WithRelaxed(4))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", r.Epoch())
	}
	got := drainSerial(t, r)
	if len(got) != g.NumNodes() {
		t.Fatalf("successor granted %d of %d tasks", len(got), g.NumNodes())
	}
	found := false
	for _, v := range got {
		if v == killedTask {
			found = true
		}
	}
	if !found {
		t.Fatalf("task %d (popped mid-kill) never re-granted", killedTask)
	}
	if err := sched.NewState(g).Replay(got); err != nil {
		t.Fatalf("successor order does not replay: %v", err)
	}
	if st := r.Status(); st.Completed != st.Total || st.Quarantined != 0 {
		t.Fatalf("successor status %+v", st)
	}
}

// TestRelaxedRecoverMidRun crashes a relaxed server partway through a
// normal run and completes it on a relaxed successor.
func TestRelaxedRecoverMidRun(t *testing.T) {
	g, order := relaxedTestDag(t, 13, 40)
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := Recover(dir, g, heur.Static("IC-OPTIMAL", order), wal.Options{}, WithRelaxed(4))
	if err != nil {
		t.Fatal(err)
	}
	var granted []dag.NodeID
	for i := 0; i < 10; i++ {
		v, state := s.Allocate()
		if state != AllocOK {
			t.Fatalf("grant %d: state %v", i, state)
		}
		granted = append(granted, v)
		if i%2 == 0 { // complete half, leave half in flight
			if _, err := s.Complete(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Kill()

	r, err := Recover(dir, g, heur.Static("IC-OPTIMAL", order), wal.Options{}, WithRelaxed(4))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	rest := drainSerial(t, r)
	if r.Status().Completed != g.NumNodes() {
		t.Fatalf("completed %d of %d after recovery (granted %d more)",
			r.Status().Completed, g.NumNodes(), len(rest))
	}
}
