package icserver

import (
	"fmt"
	"sort"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/obs"
	"icsched/internal/wal"
)

// walAppendLocked journals one event of this incarnation (caller holds
// s.mu).  A memory-only server (nil wal) skips silently; the first
// append failure wounds the server — the in-memory state is then ahead
// of the durable one, so every later mutating request is refused (see
// unavailable) rather than widening the divergence.
func (s *Server) walAppendLocked(k wal.Kind, v dag.NodeID, attempt uint32) {
	if s.wal == nil || s.walErr != nil {
		return
	}
	if _, err := s.wal.Append(wal.Record{Epoch: s.epoch, Kind: k, Task: int64(v), Attempt: attempt}); err != nil {
		s.walErr = err
	}
}

// maybeSnapshotLocked writes a compacting snapshot when the journal's
// policy asks for one (caller holds s.mu).
func (s *Server) maybeSnapshotLocked() {
	if s.wal == nil || s.walErr != nil || !s.wal.SnapshotDue() {
		return
	}
	if err := s.wal.Snapshot(s.snapshotLocked()); err != nil {
		s.walErr = err
	}
}

// snapshotLocked captures the full scheduler state as a wal.Snapshot
// (caller holds s.mu).  In-flight leases are listed in grant order so a
// recovering server requeues them in the order they went out.
func (s *Server) snapshotLocked() wal.Snapshot {
	n := s.g.NumNodes()
	snap := wal.Snapshot{
		Epoch:    s.epoch,
		Nodes:    n,
		Executed: s.st.ExecutedWords(nil),
		Attempts: make([]uint32, n),
		Stalls:   uint64(s.stalls),
		Reissues: uint64(s.reissues),
		Failed:   uint64(s.failed),
	}
	if s.cursorInst != nil {
		snap.Cursor = int64(s.cursorInst.Cursor())
	}
	for v, a := range s.attempts {
		snap.Attempts[v] = uint32(a)
	}
	for v := range s.quarantined {
		snap.Quarantined = append(snap.Quarantined, int64(v))
	}
	sort.Slice(snap.Quarantined, func(i, j int) bool { return snap.Quarantined[i] < snap.Quarantined[j] })
	seen := make(map[dag.NodeID]bool, len(s.returned))
	for _, v := range s.returned {
		if s.done[v] || s.quarantined[v] || seen[v] {
			continue // lazily-invalidated queue entries; skip like allocation does
		}
		seen[v] = true
		snap.Returned = append(snap.Returned, int64(v))
	}
	inflight := make([]leaseEntry, 0, len(s.leases))
	for v, t := range s.leases {
		inflight = append(inflight, leaseEntry{v: v, granted: t})
	}
	sort.Slice(inflight, func(i, j int) bool {
		if !inflight[i].granted.Equal(inflight[j].granted) {
			return inflight[i].granted.Before(inflight[j].granted)
		}
		return inflight[i].v < inflight[j].v
	})
	for _, e := range inflight {
		snap.InFlight = append(snap.InFlight, int64(e.v))
	}
	return snap
}

// Recover builds a crash-safe server backed by the journal directory
// dir.  An empty (or absent) directory starts a fresh epoch-1 execution
// of g; otherwise the pre-crash state is rebuilt exactly — snapshot
// load plus journal replay — and the epoch is bumped, fencing every
// client of the dead incarnation: executed tasks stay executed, tasks
// that were in flight are requeued (their lease holders can no longer
// report under the old epoch), the quarantine list, attempt counts, and
// Status counters carry over.  The new epoch is journaled and fsynced
// before the server is returned, so a successor always sees the bump.
//
// The dag must be the same one the journal was written against;
// recovery fails on any mismatch (wrong size, non-closed executed set,
// schema violations in the journal).
func Recover(dir string, g *dag.Dag, policy heur.Policy, wopts wal.Options, opts ...Option) (*Server, error) {
	s := newCore(g, policy, opts...)
	began := time.Now()
	userFsync, userAppend := wopts.FsyncObserver, wopts.AppendObserver
	wopts.FsyncObserver = func(d time.Duration) {
		s.m.walFsync.Observe(d.Seconds())
		if userFsync != nil {
			userFsync(d)
		}
	}
	wopts.AppendObserver = func(b int) {
		s.m.walBytes.Add(float64(b))
		if userAppend != nil {
			userAppend(b)
		}
	}
	l, rec, err := wal.Open(dir, wopts)
	if err != nil {
		return nil, err
	}
	// A cursor-journaled (schedule-cache replay) journal folds against
	// the policy's static order; plain journals ignore it.
	var order []int64
	if s.cursorInst != nil {
		if po, ok := policy.(heur.Ordered); ok {
			for _, v := range po.Order() {
				order = append(order, int64(v))
			}
		}
	}
	fold, err := rec.FoldOrdered(g.NumNodes(), order)
	if err != nil {
		l.Close()
		return nil, fmt.Errorf("icserver: journal replay: %w", err)
	}
	s.wal = l
	fresh := rec.Snap == nil && len(rec.Records) == 0
	if fresh {
		s.offerLocked(s.st.Eligible())
	} else {
		s.epoch = fold.Epoch + 1
		if err := s.restoreFold(fold); err != nil {
			l.Close()
			return nil, err
		}
	}
	// Fence durably before serving: a successor must see this incarnation
	// existed even if it never grants a task.
	s.walAppendLocked(wal.KindEpoch, -1, 0)
	if s.walErr == nil {
		if err := l.Sync(); err != nil {
			s.walErr = err
		}
	}
	if s.walErr != nil {
		l.Close()
		return nil, fmt.Errorf("icserver: journal fence: %w", s.walErr)
	}
	s.syncGaugesLocked()
	s.m.recoverySeconds.Set(time.Since(began).Seconds())
	// Only the first incarnation records the run start; successors join
	// the same logical run, keeping a shared trace reconstructible.
	if fresh && s.trace != nil {
		s.trace.Record(obs.Event{Phase: obs.PhaseRunStart, Task: -1, Actor: "server",
			Eligible: s.st.NumEligible()})
	}
	return s, nil
}

// restoreFold loads a folded journal state into the fresh server core.
func (s *Server) restoreFold(fold *wal.Snapshot) error {
	if err := s.st.Restore(s.g, fold.Executed); err != nil {
		return fmt.Errorf("icserver: recovered executed set invalid: %w", err)
	}
	for v, a := range fold.Attempts {
		if a > 0 {
			s.attempts[dag.NodeID(v)] = int(a)
		}
	}
	for v := 0; v < s.g.NumNodes(); v++ {
		if s.st.IsExecuted(dag.NodeID(v)) {
			s.done[dag.NodeID(v)] = true
		}
	}
	for _, v := range fold.Quarantined {
		s.quarantined[dag.NodeID(v)] = true
	}
	// Requeue order: explicit hand-backs first (they were already queued
	// pre-crash), then fenced in-flight grants in grant order.
	queued := make(map[dag.NodeID]bool)
	requeue := func(list []int64) {
		for _, raw := range list {
			v := dag.NodeID(raw)
			if s.done[v] || s.quarantined[v] || queued[v] {
				continue
			}
			queued[v] = true
			s.returned = append(s.returned, v)
		}
	}
	requeue(fold.Returned)
	requeue(fold.InFlight)
	s.stalls, s.reissues, s.failed = int(fold.Stalls), int(fold.Reissues), int(fold.Failed)
	if s.cursorInst != nil {
		// The granted prefix of the static order belongs to previous
		// incarnations; re-grants of its unfinished tasks flow through
		// the requeue above, never through the policy.
		s.cursorInst.SeekCursor(int(fold.Cursor))
		s.lastCursor = fold.Cursor
	}
	if s.relax != nil {
		// The relaxed core has no requeue lane: every unfinished ELIGIBLE
		// task — never granted, handed back, or fenced in flight — goes
		// back into the core and competes by rank again.  This also
		// absorbs pops the dead incarnation never journaled: they are
		// plain eligible tasks here.  offerLocked applies the
		// external-dependency gate, so cross-shard tasks wait for the
		// coordinator to re-deliver their credits.
		s.returned = nil
		var elig []dag.NodeID
		for _, v := range s.st.Eligible() {
			if !s.quarantined[v] {
				elig = append(elig, v)
			}
		}
		s.offerLocked(elig)
		return nil
	}
	// The policy pool gets exactly the never-granted ELIGIBLE tasks: the
	// granted-but-unfinished ones live in the requeue (as on the live
	// server, where the policy emitted them already).  Requeued tasks
	// bypass the external-dependency gate on purpose: a task that was
	// ever granted had every external parent completed (and those
	// completions are durable on their own shards), so re-granting it
	// before the coordinator re-credits is safe.
	var offer []dag.NodeID
	for _, v := range s.st.Eligible() {
		if !queued[v] && !s.quarantined[v] {
			offer = append(offer, v)
		}
	}
	s.offerLocked(offer)
	return nil
}
