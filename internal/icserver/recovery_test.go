package icserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/wal"
)

// wideDag returns a 6-node dag with four sources (0..3) feeding two
// sinks (4, 5) — wide enough to hold several tasks in flight at once.
func wideDag() *dag.Dag {
	b := dag.NewBuilder(6)
	b.AddArc(0, 4)
	b.AddArc(1, 4)
	b.AddArc(2, 5)
	b.AddArc(3, 5)
	return b.MustBuild()
}

// drainServer drives the server to completion in-process, failing the
// test if allocation ever stalls.
func drainServer(t *testing.T, srv *icserver.Server) {
	t.Helper()
	for {
		v, state := srv.Allocate()
		switch state {
		case icserver.AllocFinished:
			return
		case icserver.AllocEmpty:
			t.Fatal("allocation stalled mid-drain")
		}
		if _, err := srv.Complete(v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecoverFreshStartsEpochOne(t *testing.T) {
	dir := t.TempDir()
	srv, err := icserver.Recover(dir, wideDag(), heur.FIFO(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", srv.Epoch())
	}
	drainServer(t, srv)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverResumesExactState(t *testing.T) {
	g := wideDag()
	dir := t.TempDir()
	srv, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{}, icserver.WithLease(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := srv.Allocate()
	v2, _ := srv.Allocate()
	v3, _ := srv.Allocate() // left in flight across the crash
	if _, err := srv.Complete(v1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Fail(v2); err != nil { // requeued, awaiting re-grant
		t.Fatal(err)
	}
	before := srv.Status()
	srv.Kill()

	srv2, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{}, icserver.WithLease(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Epoch() != 2 {
		t.Fatalf("recovered epoch = %d, want 2", srv2.Epoch())
	}
	after := srv2.Status()
	if after.Completed != before.Completed || after.Failed != before.Failed ||
		after.Quarantined != before.Quarantined || after.Reissues != before.Reissues {
		t.Fatalf("recovered status %+v does not carry over %+v", after, before)
	}
	if after.Allocated != 0 {
		t.Fatalf("recovered server has %d leases; in-flight grants must be requeued", after.Allocated)
	}
	// The requeued hand-back goes out first, then the fenced in-flight
	// grant, each with the attempt count continuing where it left off.
	r1, state := srv2.Allocate()
	if state != icserver.AllocOK || r1 != v2 {
		t.Fatalf("first post-recovery grant = %d (state %d), want requeued %d", r1, state, v2)
	}
	r2, state := srv2.Allocate()
	if state != icserver.AllocOK || r2 != v3 {
		t.Fatalf("second post-recovery grant = %d (state %d), want fenced in-flight %d", r2, state, v3)
	}
	if _, err := srv2.Complete(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Complete(r2); err != nil {
		t.Fatal(err)
	}
	drainServer(t, srv2)
	if st := srv2.Status(); st.Completed != g.NumNodes() {
		t.Fatalf("completed %d of %d after recovery", st.Completed, g.NumNodes())
	}
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseExpiryRequeueRegrantAcrossRecovery(t *testing.T) {
	// lease expiry fires before the crash; the expiry and the re-grant
	// are journaled, and after recovery the attempt chain continues.
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := dag.NewBuilder(2)
	b.AddArc(0, 1)
	g := b.MustBuild()
	dir := t.TempDir()
	srv, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{},
		icserver.WithLease(10*time.Second), icserver.WithClock(clock), icserver.WithMaxAttempts(5))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := srv.Allocate(); v != 0 {
		t.Fatalf("first grant = %d", v)
	}
	now = now.Add(11 * time.Second) // lease expires
	if v, state := srv.Allocate(); state != icserver.AllocOK || v != 0 {
		t.Fatalf("expiry re-grant = %d (state %d)", v, state)
	}
	if srv.Status().Reissues != 1 {
		t.Fatalf("reissues = %d before crash", srv.Status().Reissues)
	}
	srv.Kill()

	srv2, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{},
		icserver.WithLease(10*time.Second), icserver.WithClock(clock), icserver.WithMaxAttempts(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.Status().Reissues; got != 1 {
		t.Fatalf("reissues = %d after recovery, want 1", got)
	}
	// The fenced second grant is requeued; granting it again is attempt 3.
	v, state := srv2.Allocate()
	if state != icserver.AllocOK || v != 0 {
		t.Fatalf("post-recovery grant = %d (state %d)", v, state)
	}
	drainServerFrom(t, srv2, v)
	if st := srv2.Status(); st.Completed != 2 || st.Quarantined != 0 {
		t.Fatalf("final status %+v", st)
	}
	// The journal must replay as attempts 1, 2, 3 for task 0.
	rec, err := wal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	attempts := []uint32{}
	for _, r := range rec.Records {
		if r.Kind == wal.KindGrant && r.Task == 0 {
			attempts = append(attempts, r.Attempt)
		}
	}
	// The pre-snapshot prefix may be compacted away; the surviving tail
	// must still be strictly increasing and end at 3.
	for i := 1; i < len(attempts); i++ {
		if attempts[i] != attempts[i-1]+1 {
			t.Fatalf("grant attempts %v are not consecutive", attempts)
		}
	}
	if len(attempts) == 0 || attempts[len(attempts)-1] != 3 {
		t.Fatalf("grant attempts %v do not end at 3", attempts)
	}
}

// drainServerFrom completes v then drains the rest.
func drainServerFrom(t *testing.T, srv *icserver.Server, v dag.NodeID) {
	t.Helper()
	if _, err := srv.Complete(v); err != nil {
		t.Fatal(err)
	}
	drainServer(t, srv)
}

func TestReportRetrySpansEpochBump(t *testing.T) {
	// A client's /report races a server crash: the retry lands on the
	// restarted incarnation with the old epoch, gets the typed 409, and
	// succeeds after resyncing — idempotently if the first attempt was
	// journaled, as a fresh completion otherwise.
	g := wideDag()
	dir := t.TempDir()
	srv, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{}, icserver.WithLease(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var grant struct {
		Tasks []struct {
			Task  dag.NodeID `json:"task"`
			Epoch uint64     `json:"epoch"`
		} `json:"tasks"`
		Epoch uint64 `json:"epoch"`
	}
	postJSONCode(t, ts.URL+"/tasks", `{"k":2}`, http.StatusOK, &grant)
	if grant.Epoch != 1 || len(grant.Tasks) != 2 {
		t.Fatalf("grant %+v", grant)
	}

	// Crash and restart under the same journal dir; serve the successor
	// on the same URL is unnecessary — a second test server suffices.
	srv.Kill()
	srv2, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{}, icserver.WithLease(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	report := map[string]any{
		"done":  []dag.NodeID{grant.Tasks[0].Task, grant.Tasks[1].Task},
		"epoch": grant.Epoch,
	}
	payload, _ := json.Marshal(report)
	var rej struct {
		Error string `json:"error"`
		Epoch uint64 `json:"epoch"`
	}
	postJSONCode(t, ts2.URL+"/report", string(payload), http.StatusConflict, &rej)
	if rej.Error != "stale epoch" || rej.Epoch != 2 {
		t.Fatalf("stale rejection %+v", rej)
	}
	if srv2.Status().StaleReports != 1 {
		t.Fatalf("staleReports = %d", srv2.Status().StaleReports)
	}

	// Resync (per protocol, via /status) and retry under the new epoch.
	st, err := icserver.FetchStatus(context.Background(), nil, ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 {
		t.Fatalf("status epoch = %d", st.Epoch)
	}
	report["epoch"] = st.Epoch
	payload, _ = json.Marshal(report)
	var ack struct {
		Completed  int `json:"completed"`
		Duplicates int `json:"duplicates"`
	}
	postJSONCode(t, ts2.URL+"/report", string(payload), http.StatusOK, &ack)
	if ack.Completed+ack.Duplicates != 2 {
		t.Fatalf("retried report ack %+v", ack)
	}
	// Retrying the same report again is all duplicates.
	postJSONCode(t, ts2.URL+"/report", string(payload), http.StatusOK, &ack)
	if ack.Completed != 0 || ack.Duplicates != 2 {
		t.Fatalf("second retry ack %+v, want pure duplicates", ack)
	}
}

func TestShutdownClosesJournalAndIsIdempotent(t *testing.T) {
	g := wideDag()
	dir := t.TempDir()
	srv, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	drainServer(t, srv)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	rec, err := wal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	fold, err := rec.Fold(g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	if !fold.Drained {
		t.Fatal("journal does not record the drain")
	}
	if fold.NumExecuted() != g.NumNodes() {
		t.Fatalf("journal folds to %d of %d executed", fold.NumExecuted(), g.NumNodes())
	}
	if rec.Truncated {
		t.Fatal("clean shutdown left a torn journal")
	}
}

func TestKilledServerRefusesRequests(t *testing.T) {
	g := wideDag()
	srv, err := icserver.Recover(t.TempDir(), g, heur.FIFO(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Kill()
	srv.Kill() // idempotent
	resp, err := http.Post(ts.URL+"/task", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("killed server answered /task with %d", resp.StatusCode)
	}
}

func TestSnapshotCompactionMidRun(t *testing.T) {
	// A tiny SnapshotEvery forces snapshots mid-run; recovery from the
	// compacted directory must still be exact.
	g := wideDag()
	dir := t.TempDir()
	srv, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := srv.Allocate()
	v2, _ := srv.Allocate()
	if _, err := srv.Complete(v1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Complete(v2); err != nil {
		t.Fatal(err)
	}
	srv.Kill()
	srv2, err := icserver.Recover(dir, g, heur.FIFO(), wal.Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.Status().Completed; got != 2 {
		t.Fatalf("recovered %d completions, want 2", got)
	}
	drainServer(t, srv2)
	if st := srv2.Status(); st.Completed != g.NumNodes() {
		t.Fatalf("final status %+v", st)
	}
}

// postJSONCode POSTs a JSON body and decodes the response, asserting the
// status code.
func postJSONCode(t *testing.T, url, body string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s returned %d (%s), want %d", url, resp.StatusCode, strings.TrimSpace(buf.String()), wantCode)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("POST %s response %q: %v", url, buf.String(), err)
		}
	}
}
