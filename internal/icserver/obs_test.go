package icserver_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/mesh"
	"icsched/internal/obs"
	"icsched/internal/sched"
)

// TestLeaseExpiryQuarantinesAtMaxAttempts covers the recovery path where
// the *lease-expiry* scan (not a /failed report) exhausts MaxAttempts:
// the expired task must be quarantined, and — being the last task in
// flight with its child blocked behind it — the very same Allocate call
// must land on the degraded-terminal AllocFinished state instead of
// stalling forever.
func TestLeaseExpiryQuarantinesAtMaxAttempts(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := dag.NewBuilder(2)
	b.AddArc(0, 1)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(),
		icserver.WithLease(time.Second),
		icserver.WithMaxAttempts(1),
		icserver.WithClock(clock))

	if v, state := srv.Allocate(); state != icserver.AllocOK || v != 0 {
		t.Fatalf("initial allocation: task %d (state %d)", v, state)
	}
	now = now.Add(5 * time.Second) // lease long expired; attempts already at max

	v, state := srv.Allocate()
	if state != icserver.AllocFinished {
		t.Fatalf("after expiry at MaxAttempts: alloc %d (state %d), want AllocFinished", v, state)
	}
	if !srv.Finished() {
		t.Fatal("Finished() false after degraded-terminal allocation")
	}
	st := srv.Status()
	if st.Quarantined != 1 || st.Completed != 0 || st.Allocated != 0 {
		t.Fatalf("degraded status: %+v", st)
	}
}

// scrapeMetrics fetches /metrics and parses every sample line into a
// name -> value map (histogram sample lines included, untyped).
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable metrics line %q", line)
		}
		val, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		samples[line[:i]] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestMetricsAgreeWithStatus is the acceptance check that a /metrics
// scrape and Status() tell the same story after a failure-heavy run:
// flaky clients hand tasks back, leases reissue, and at quiescence every
// mirrored series must equal its Status field exactly.
func TestMetricsAgreeWithStatus(t *testing.T) {
	levels := 8
	g := mesh.OutMesh(levels)
	srv := icserver.New(g, optimalMeshPolicy(levels), icserver.WithMaxAttempts(10))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mu sync.Mutex
	failures := make(map[dag.NodeID]int)
	var wg sync.WaitGroup
	const clients = 4
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &icserver.Client{
				BaseURL: ts.URL,
				ID:      fmt.Sprintf("client-%d", i),
				Seed:    int64(i + 1),
				Compute: func(v dag.NodeID, name string) error {
					mu.Lock()
					defer mu.Unlock()
					if failures[v] == 0 && int(v)%3 == i%3 {
						failures[v]++
						return errors.New("flaky")
					}
					return nil
				},
			}
			_, errs[i] = c.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	st := srv.Status()
	if st.Completed != st.Total {
		t.Fatalf("run did not complete: %+v", st)
	}
	m := scrapeMetrics(t, ts.URL)
	checks := []struct {
		series string
		want   int
	}{
		{"icserver_completions_total", st.Completed},
		{"icserver_completed", st.Completed},
		{"icserver_stalls_total", st.Stalls},
		{"icserver_reissues_total", st.Reissues},
		{"icserver_failed_total", st.Failed},
		{"icserver_quarantined", st.Quarantined},
		{"icserver_eligible", st.Eligible},
		{"icserver_leases", st.Allocated},
	}
	for _, c := range checks {
		got, ok := m[c.series]
		if !ok {
			t.Fatalf("series %s missing from /metrics", c.series)
		}
		if got != float64(c.want) {
			t.Errorf("%s = %g, Status says %d", c.series, got, c.want)
		}
	}
	if m[`icserver_http_requests_total{path="/task"}`] == 0 ||
		m[`icserver_http_requests_total{path="/done"}`] == 0 {
		t.Fatalf("per-path request counters missing or zero: %v", m)
	}
	if st.Failed > 0 && m[`icserver_http_requests_total{path="/failed"}`] == 0 {
		t.Fatal("/failed requests happened but counter is zero")
	}
}

// TestServerTraceMatchesProfileOracle drives the server serially in
// process (allocate, complete, repeat) and checks the trace-reconstructed
// eligibility profile against sched.Profile for the allocation order —
// the same oracle identity the executor trace satisfies.
func TestServerTraceMatchesProfileOracle(t *testing.T) {
	levels := 7
	g := mesh.OutMesh(levels)
	tr := obs.NewTrace()
	srv := icserver.New(g, optimalMeshPolicy(levels), icserver.WithTrace(tr))
	var order []dag.NodeID
	for {
		v, state := srv.Allocate()
		if state == icserver.AllocFinished {
			break
		}
		if state != icserver.AllocOK {
			t.Fatalf("serial drive stalled (state %d) after %d tasks", state, len(order))
		}
		order = append(order, v)
		if _, err := srv.Complete(v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.EligibilityProfile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.Profile(g, order)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("trace profile has %d steps, oracle %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("profile[%d] = %d from trace, %d from sched.Profile", i, got[i], want[i])
		}
	}
}

// TestServerTraceAttributesClients checks actor attribution end to end:
// events carry the X-IC-Client name, the run brackets with
// run-start/run-end, and allocate/done pair up per task.
func TestServerTraceAttributesClients(t *testing.T) {
	levels := 5
	g := mesh.OutMesh(levels)
	tr := obs.NewTrace()
	srv := icserver.New(g, optimalMeshPolicy(levels), icserver.WithTrace(tr))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &icserver.Client{
		BaseURL: ts.URL,
		ID:      "worker-a",
		Seed:    1,
		Compute: func(dag.NodeID, string) error { return nil },
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One extra poll after completion records the run-end.
	resp, err := http.Post(ts.URL+"/task", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	counts := map[obs.Phase]int{}
	for _, ev := range tr.Events() {
		counts[ev.Phase]++
		switch ev.Phase {
		case obs.PhaseAllocate, obs.PhaseDone:
			if ev.Actor != "worker-a" {
				t.Fatalf("%s event for task %d has actor %q, want worker-a", ev.Phase, ev.Task, ev.Actor)
			}
		}
	}
	n := g.NumNodes()
	if counts[obs.PhaseAllocate] != n || counts[obs.PhaseDone] != n {
		t.Fatalf("phase counts %v, want %d allocates and dones", counts, n)
	}
	if counts[obs.PhaseRunStart] != 1 || counts[obs.PhaseRunEnd] != 1 {
		t.Fatalf("phase counts %v, want one run-start and one run-end", counts)
	}
}
