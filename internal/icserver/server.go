// Package icserver is a working Internet-computing task server in the
// paper's setting (§1–§2): a server owns a computation-dag and hands
// ELIGIBLE tasks to remote clients over HTTP, allocating in the order a
// pluggable scheduling policy dictates (IC-optimal via heur.Static, or
// any heuristic).
//
// The quality model's idealization — tasks are executed in allocation
// order — cannot be enforced over a real network, so the server adds the
// mechanisms real IC systems use against slow, vanished, or failing
// clients (cf. the monitoring prescriptions the paper cites):
//
//   - an allocation lease: a task not reported complete within the lease
//     is re-offered to other clients (expiry tracked in a min-heap, so
//     allocation stays O(log n) under many outstanding leases);
//   - early hand-back: a client whose computation fails POSTs /failed and
//     the task is requeued ahead of the policy;
//   - quarantine: a task that has been handed out MaxAttempts times
//     without completing is quarantined rather than reissued forever, and
//     the computation degrades gracefully to "finished with a quarantined
//     set" instead of hanging;
//   - idempotent completion: late or duplicate /done reports (including
//     from clients whose lease expired, or for quarantined tasks, which
//     are then rescued) cause no harm.
//
// Wire protocol (JSON):
//
//	POST /task            -> 200 {"task": id, "name": label}  |  204 (none eligible)
//	                         |  410 (finished)  |  503 (draining)
//	POST /done   {"task"} -> 200 {"newlyEligible": k}
//	POST /failed {"task"} -> 200 {"requeued": b, "quarantined": b}
//	POST /tasks  {"k": n} -> 200 {"tasks": [{"task": id, "name": label}, ...]}
//	                         (empty array when nothing is eligible right now)
//	                         |  400 (k < 1)  |  410 (finished)  |  503 (draining)
//	POST /report {"done": [ids], "failed": [ids], "k": n?}
//	                      -> 200 {"newlyEligible", "completed", "duplicates",
//	                              "requeued", "quarantined",
//	                              "tasks": [...]?, "finished": b?}
//	                         |  400 (malformed, k < 0, or a task listed twice)
//	                         |  409 (out-of-range or never-allocated task)
//	GET  /status          -> 200 {"total", "completed", "eligible", "allocated",
//	                              "stalls", "reissues", "failed", "quarantined"}
//	GET  /healthz         -> 200/503 {"status", "uptimeSeconds", "completed", "total"}
//	GET  /metrics         -> 200 Prometheus text format (see Metrics)
//
// /tasks and /report are the batched protocol: one request amortizes the
// scheduler lock and the HTTP round-trip over up to k tasks.  A /tasks
// grant is the length-≤k prefix of the server's allocation order — expired
// leases first, then /failed hand-backs, then the policy's picks — taken
// under ONE lock acquisition with one clock read and one gauge sync, so an
// IC-optimal policy hands out exactly the ELIGIBLE-maximizing prefix the
// quality model prescribes.  A /report acks a mixed batch of completions
// and hand-backs atomically: the batch is validated in full (any
// out-of-range, never-allocated, or twice-listed task rejects it) before
// anything is applied, so a retried report is always safe.  A /report
// carrying a positive "k" additionally piggybacks the next grant onto the
// ack — report and grant happen under the same single lock acquisition,
// so the steady-state batched client pays one round trip per batch
// ("finished": true is the piggybacked analog of the /tasks 410; while
// draining the ack is accepted but the grant is suppressed).  The legacy
// single-task endpoints remain wire-compatible; both client generations
// can share one server.
//
// Every 503 carries one typed JSON body {"error": "unavailable",
// "reason": "draining" | "killed" | "journal-failed", "detail": ...}:
// the drain check and the killed/wounded check happen under one lock
// acquisition, so a request cannot observe "not draining" and then be
// granted by a drained (or dead) incarnation.  Draining refuses only
// new grants (/task, /tasks, and the piggybacked grant of /report);
// completions stay welcome so in-flight leases can land.
//
// POST requests may carry an X-IC-Client header naming the client; the
// name is attached to trace events so per-client activity is visible in
// chrome://tracing.
//
// Request bodies are bounded (64 KiB); oversized, empty, or malformed
// bodies get 400.
package icserver

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/obs"
	"icsched/internal/relaxed"
	"icsched/internal/sched"
	"icsched/internal/wal"
)

// clientHeader is the optional request header naming the client for
// trace attribution.
const clientHeader = "X-IC-Client"

// maxBodyBytes bounds /done and /failed request bodies.
const maxBodyBytes = 64 << 10

// Server allocates the tasks of one dag execution.  Create with New and
// mount via Handler (or use httptest / http.Server directly).
type Server struct {
	mu          sync.Mutex
	g           *dag.Dag
	st          *sched.State
	inst        heur.Instance
	lease       time.Duration
	maxAttempts int
	now         func() time.Time // injectable clock for tests
	start       time.Time
	leases      map[dag.NodeID]time.Time // task -> lease grant time
	expiry      leaseHeap                // grant-time-ordered, lazily invalidated
	attempts    map[dag.NodeID]int       // task -> times handed out
	returned    []dag.NodeID             // tasks handed back via /failed, FIFO
	quarantined map[dag.NodeID]bool
	done        map[dag.NodeID]bool
	stalls      int
	reissues    int
	failed      int // /failed reports accepted
	draining    bool
	degraded    bool // terminal with a non-empty quarantined set

	// Durability state (nil wal = memory-only server).  The epoch is the
	// fencing token of this incarnation: fixed at construction, bumped
	// once per Recover, stamped on every grant and checked on every
	// nonzero-epoch report.
	epoch        uint64
	wal          *wal.Log
	walErr       error // first journal append failure; wounds the server
	staleReports int   // reports rejected for carrying a stale epoch
	killed       bool  // Kill happened: refuse all mutating requests
	shutdownDone chan struct{}
	shutdownErr  error

	// Relaxed grant path (nil relax = exact locked scheduler).  See
	// relaxed.go: pops happen outside s.mu, everything durable stays
	// under it.  relaxPending counts tasks claimed from the core but not
	// yet granted or pushed back, so the terminal check cannot mistake an
	// in-window pop for a lost task.
	relax        *relaxed.Core
	relaxShards  int
	relaxPending atomic.Int64
	relaxPopHook func(dag.NodeID) // test hook: between claim and journal

	// Schedule-cache replay path (nil cursorInst = per-task grant
	// journaling).  When the policy grants strictly along a cached
	// static order (schedcache.Replay), first-time grants are journaled
	// as cursor advances — one KindCursor record per allocation batch
	// instead of one KindGrant per task — and recovery re-derives the
	// granted prefix from (order, cursor).  Re-grants after expiry or
	// hand-back keep explicit records.
	cursorInst  cursorInstance
	cursorDirty bool  // first-time grants since the last cursor record
	lastCursor  int64 // cursor as of the last journaled cursor record

	// External-dependency gate (nil extNeed = unsharded server).  See
	// extdeps.go: a task with outstanding cross-shard credits is held
	// back in extHeld when the scheduler offers it, and released by
	// Credit; extCredited makes credit delivery idempotent per
	// (task, source) pair.
	extNeed     map[dag.NodeID]int
	extHeld     map[dag.NodeID]bool
	extCredited map[dag.NodeID]map[int64]bool

	// completionHook, when set, observes every first-time completion
	// (after it is journaled) — the composition point the sharded
	// coordinator (internal/shard) uses to turn completions into
	// cross-shard eligibility credits.  Called under s.mu: it must not
	// call back into this server.
	completionHook func(dag.NodeID)

	reg        *obs.Registry // always non-nil; serves GET /metrics
	trace      *obs.Trace    // optional task-trace recorder
	traceEnded bool          // run-end recorded
	m          serverMetrics
}

// serverMetrics caches the registry handles the hot paths bump.  Every
// series is reconciled with Status(): the *_total counters mirror the
// monotone Status fields and the gauges mirror the instantaneous ones,
// so a /metrics scrape and a /status read taken at quiescence agree.
type serverMetrics struct {
	reqTask, reqDone, reqFailed *obs.Counter
	reqTasks, reqReport         *obs.Counter // batched-protocol requests
	allocations                 *obs.Counter // lease grants, initial + reissues
	completions                 *obs.Counter // first-time completions
	duplicateDone               *obs.Counter // idempotent duplicate /done no-ops
	stalls                      *obs.Counter
	reissues                    *obs.Counter
	failed                      *obs.Counter // /failed hand-backs accepted
	leaseExpiries               *obs.Counter // leases reclaimed after expiry
	quarantines                 *obs.Counter // tasks ever quarantined
	rescues                     *obs.Counter // quarantined tasks rescued by a late /done
	staleReports                *obs.Counter // reports rejected on a stale epoch
	eligible                    *obs.Gauge   // live |ELIGIBLE| (§2.2)
	leases                      *obs.Gauge   // outstanding allocations
	quarantined                 *obs.Gauge   // current quarantined set size
	completed                   *obs.Gauge   // tasks executed
	epoch                       *obs.Gauge   // fencing token of this incarnation
	recoverySeconds             *obs.Gauge   // wall time of the last Recover
	walBytes                    *obs.Counter // journal bytes appended
	walFsync                    *obs.Histogram

	latTask, latDone, latFailed *obs.Histogram // per-endpoint handler latency
	latTasks, latReport         *obs.Histogram
	grantsPerRequest            *obs.Histogram // tasks granted per /tasks request
	lockHold                    *obs.Histogram // scheduler-lock hold time per allocation request
}

// latencyBuckets spans local-loop HTTP handler times, 50µs to ~1s.
var latencyBuckets = []float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1,
}

// grantBuckets spans batch sizes granted per /tasks request.
var grantBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	req := func(path string) *obs.Counter {
		return reg.Counter(fmt.Sprintf("icserver_http_requests_total{path=%q}", path),
			"HTTP requests by path")
	}
	lat := func(path string) *obs.Histogram {
		return reg.Histogram(fmt.Sprintf("icserver_request_seconds{path=%q}", path),
			"HTTP handler latency by path", latencyBuckets)
	}
	return serverMetrics{
		reqTask:   req("/task"),
		reqDone:   req("/done"),
		reqFailed: req("/failed"),
		reqTasks:  req("/tasks"),
		reqReport: req("/report"),
		latTask:   lat("/task"),
		latDone:   lat("/done"),
		latFailed: lat("/failed"),
		latTasks:  lat("/tasks"),
		latReport: lat("/report"),
		grantsPerRequest: reg.Histogram("icserver_grants_per_request",
			"tasks granted per batched /tasks request", grantBuckets),
		lockHold: reg.Histogram("icserver_lock_hold_seconds",
			"scheduler-lock hold time per allocation request", latencyBuckets),
		allocations:   reg.Counter("icserver_allocations_total", "lease grants (initial allocations + reissues)"),
		completions:   reg.Counter("icserver_completions_total", "first-time task completions"),
		duplicateDone: reg.Counter("icserver_duplicate_done_total", "idempotent duplicate /done reports"),
		stalls:        reg.Counter("icserver_stalls_total", "allocation requests that found nothing ELIGIBLE"),
		reissues:      reg.Counter("icserver_reissues_total", "re-allocations after lease expiry or /failed"),
		failed:        reg.Counter("icserver_failed_total", "/failed hand-backs accepted"),
		leaseExpiries: reg.Counter("icserver_lease_expiries_total", "leases reclaimed after expiry"),
		quarantines:   reg.Counter("icserver_quarantines_total", "tasks quarantined (MaxAttempts exhausted)"),
		rescues:       reg.Counter("icserver_quarantine_rescues_total", "quarantined tasks rescued by a late completion"),
		staleReports:  reg.Counter("icserver_stale_epoch_rejections_total", "reports rejected for carrying a stale epoch"),
		eligible:      reg.Gauge("icserver_eligible", "live |ELIGIBLE| count (the §2.2 quality measure)"),
		leases:        reg.Gauge("icserver_leases", "outstanding allocation leases"),
		quarantined:   reg.Gauge("icserver_quarantined", "current quarantined set size"),
		completed:     reg.Gauge("icserver_completed", "tasks completed"),
		epoch:         reg.Gauge("icserver_epoch", "fencing token of the serving incarnation"),
		recoverySeconds: reg.Gauge("icserver_recovery_seconds",
			"wall time of the last snapshot-load + journal-replay recovery"),
		walBytes: reg.Counter("icserver_wal_bytes_total", "journal bytes appended"),
		walFsync: reg.Histogram("icserver_wal_fsync_seconds",
			"journal fsync latency (group commit)", latencyBuckets),
	}
}

// cursorInstance is the contract a policy instance must satisfy for
// cursor-journaled replay (schedcache.Replay implements it): grants are
// issued strictly in static-order positions, so the first-time-granted
// set is always exactly order[0:Cursor()].
type cursorInstance interface {
	heur.Instance
	// Cursor reports how many first-time grants have been issued.
	Cursor() int
	// SeekCursor restores the cursor after recovery: the first c order
	// positions were granted by a previous incarnation.
	SeekCursor(c int)
}

// Option configures a Server.
type Option func(*Server)

// WithLease sets the allocation lease (default 30s; 0 disables
// reissuing).
func WithLease(d time.Duration) Option {
	return func(s *Server) { s.lease = d }
}

// WithMaxAttempts sets how many times a task may be handed out (initial
// allocation + reissues after expiry or /failed) before it is quarantined
// (default 5; 0 disables quarantine).
func WithMaxAttempts(n int) Option {
	return func(s *Server) { s.maxAttempts = n }
}

// WithClock injects a time source (tests).
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// WithTrace attaches a task-trace recorder: every allocation, completion,
// hand-back, and quarantine is recorded as an obs.Event (the schema shared
// with exec and icsim), with the client's X-IC-Client name as the actor.
func WithTrace(tr *obs.Trace) Option {
	return func(s *Server) { s.trace = tr }
}

// WithCompletionHook observes every first-time completion, after the
// completion is journaled and the newly-eligible packet offered.  The
// hook runs under the scheduler lock and MUST NOT call back into the
// server; keep it to an enqueue (the sharded coordinator forwards the
// completion to other shards from its own goroutine).
func WithCompletionHook(h func(dag.NodeID)) Option {
	return func(s *Server) { s.completionHook = h }
}

// newCore builds the server skeleton shared by New and Recover: struct,
// options, metrics, clock — but no policy offer, no trace events, and
// no journal.
func newCore(g *dag.Dag, policy heur.Policy, opts ...Option) *Server {
	s := &Server{
		g:           g,
		st:          sched.NewState(g),
		inst:        policy.Start(g),
		lease:       30 * time.Second,
		maxAttempts: 5,
		now:         time.Now,
		epoch:       1,
		leases:      make(map[dag.NodeID]time.Time),
		attempts:    make(map[dag.NodeID]int),
		quarantined: make(map[dag.NodeID]bool),
		done:        make(map[dag.NodeID]bool),
		reg:         obs.NewRegistry(),
	}
	for _, o := range opts {
		o(s)
	}
	if s.relaxShards > 0 {
		s.relax = newRelaxedCore(g, policy, s.relaxShards)
	} else if ci, ok := s.inst.(cursorInstance); ok {
		// The relaxed core pops out of order, so cursor journaling only
		// arms on the exact locked path.
		s.cursorInst = ci
	}
	s.m = newServerMetrics(s.reg)
	s.start = s.now()
	return s
}

// New builds a memory-only server for one fresh execution of g under the
// policy.  For a crash-safe server backed by a journal directory — fresh
// or recovered — use Recover.
func New(g *dag.Dag, policy heur.Policy, opts ...Option) *Server {
	s := newCore(g, policy, opts...)
	s.offerLocked(s.st.Eligible())
	s.syncGaugesLocked()
	if s.trace != nil {
		s.trace.Record(obs.Event{Phase: obs.PhaseRunStart, Task: -1, Actor: "server",
			Eligible: s.st.NumEligible()})
	}
	return s
}

// Metrics returns the server's registry (for embedding its series in a
// larger process registry or scraping without HTTP).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the HTTP handler exposing the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /task", timed(s.m.latTask, s.handleTask))
	mux.HandleFunc("POST /done", timed(s.m.latDone, s.handleDone))
	mux.HandleFunc("POST /failed", timed(s.m.latFailed, s.handleFailed))
	mux.HandleFunc("POST /tasks", timed(s.m.latTasks, s.handleTasks))
	mux.HandleFunc("POST /report", timed(s.m.latReport, s.handleReport))
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.reg.Handler())
	return mux
}

// timed records a handler's wall time in its endpoint latency histogram.
func timed(lat *obs.Histogram, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		lat.Observe(time.Since(start).Seconds())
	}
}

// taskResponse is the /task payload; Epoch is the fencing token the
// report for this grant must carry.
type taskResponse struct {
	Task  dag.NodeID `json:"task"`
	Name  string     `json:"name"`
	Epoch uint64     `json:"epoch,omitempty"`
}

// doneRequest is the /done and /failed payload.  A zero Epoch is a
// legacy (pre-fencing) client and is accepted unchecked; a nonzero
// epoch must match the serving incarnation or the report is rejected
// with 409 stale-epoch.
type doneRequest struct {
	Task  dag.NodeID `json:"task"`
	Epoch uint64     `json:"epoch,omitempty"`
}

// doneResponse reports the packet size.
type doneResponse struct {
	NewlyEligible int `json:"newlyEligible"`
}

// failedResponse reports what became of a handed-back task.
type failedResponse struct {
	Requeued    bool `json:"requeued"`
	Quarantined bool `json:"quarantined"`
}

// tasksRequest is the batched /tasks payload: grant up to K tasks.
type tasksRequest struct {
	K int `json:"k"`
}

// tasksResponse carries a batch grant; Tasks is empty when nothing is
// eligible (the batched analog of the legacy 204).
type tasksResponse struct {
	Tasks []taskResponse `json:"tasks"`
	Epoch uint64         `json:"epoch,omitempty"`
}

// reportRequest is the batched /report payload: a mixed batch of
// completions and early hand-backs, acked in one request.  A positive K
// piggybacks the next grant onto the ack — the server acks the batch and
// grants up to K next tasks under the same single lock acquisition, so a
// steady-state batched client needs one round trip per batch, not two.
type reportRequest struct {
	Done   []dag.NodeID `json:"done"`
	Failed []dag.NodeID `json:"failed"`
	K      int          `json:"k,omitempty"`
	Epoch  uint64       `json:"epoch,omitempty"`
}

// reportResponse is the /report reply: the batch summary plus, when the
// request piggybacked an ask (K > 0), the next grant.  Finished reports
// the terminal state (the batched analog of the legacy 410) — it can only
// turn true on a piggybacked report, never on a plain ack.
type reportResponse struct {
	BatchReport
	Tasks    []taskResponse `json:"tasks,omitempty"`
	Finished bool           `json:"finished,omitempty"`
	Epoch    uint64         `json:"epoch,omitempty"`
}

// BatchReport summarizes what a /report batch did; it is also the
// in-process Report return value.
type BatchReport struct {
	// NewlyEligible sums the packet sizes of the first-time completions.
	NewlyEligible int `json:"newlyEligible"`
	// Completed counts first-time completions in the batch.
	Completed int `json:"completed"`
	// Duplicates counts idempotent re-acks of already-completed tasks.
	Duplicates int `json:"duplicates"`
	// Requeued and Quarantined count what became of the failed entries.
	Requeued    int `json:"requeued"`
	Quarantined int `json:"quarantined"`
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status        string  `json:"status"` // "ok" or "draining"
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Completed     int     `json:"completed"`
	Total         int     `json:"total"`
}

// Status is the /status payload.  Epoch is the serving incarnation's
// fencing token — a fenced client resyncs by reading it here.
type Status struct {
	Total        int    `json:"total"`
	Completed    int    `json:"completed"`
	Eligible     int    `json:"eligible"`
	Allocated    int    `json:"allocated"`
	Stalls       int    `json:"stalls"`
	Reissues     int    `json:"reissues"`
	Failed       int    `json:"failed"`
	Quarantined  int    `json:"quarantined"`
	Epoch        uint64 `json:"epoch"`
	StaleReports int    `json:"staleReports"`
}

// unavailableResponse is the one typed 503 body every refusal path
// emits: Reason distinguishes a draining server (come back to the same
// incarnation for completions, or not at all for grants) from a killed
// or journal-wounded one (retry against the successor).
type unavailableResponse struct {
	Error  string `json:"error"`  // always "unavailable"
	Reason string `json:"reason"` // "draining" | "killed" | "journal-failed"
	Detail string `json:"detail,omitempty"`
}

// unavailableError is the Error field of every 503 body.
const unavailableError = "unavailable"

// Refusal reasons.
const (
	ReasonDraining      = "draining"
	ReasonKilled        = "killed"
	ReasonJournalFailed = "journal-failed"
)

// writeUnavailable emits the typed 503 body.
func writeUnavailable(w http.ResponseWriter, reason, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(unavailableResponse{Error: unavailableError, Reason: reason, Detail: detail})
}

// refuse checks every unavailability condition under ONE lock
// acquisition — the same discipline the epoch fence gets from its
// immutable read — and writes the typed 503 when the request must be
// refused.  checkDrain marks allocation paths (/task, /tasks): a
// draining server refuses new grants but still takes completions.
// The returned draining flag lets /report suppress its piggybacked
// grant while accepting the ack.
func (s *Server) refuse(w http.ResponseWriter, checkDrain bool) (refused, draining bool) {
	s.mu.Lock()
	err := s.unavailableLocked()
	draining = s.draining
	s.mu.Unlock()
	if err != nil {
		reason := ReasonKilled
		if errors.Is(err, errJournalFailed) {
			reason = ReasonJournalFailed
		}
		writeUnavailable(w, reason, err.Error())
		return true, draining
	}
	if checkDrain && draining {
		writeUnavailable(w, ReasonDraining, "icserver: draining, no new grants")
		return true, draining
	}
	return false, draining
}

// errKilled and errJournalFailed mark mutating operations refused on a
// dead or wounded incarnation; handlers map them to 503 so clients
// retry against the successor instead of treating them as conflicts.
var (
	errKilled        = errors.New("icserver: server killed")
	errJournalFailed = errors.New("icserver: journal failed")
)

// unavailableLocked is the in-lock form of unavailable (caller holds
// s.mu).  Kill takes the same lock, so every mutating core that checks
// this first is atomic against it: an operation either completed fully
// before the kill (and was journaled) or is refused in full — no grant
// or ack can escape in memory only, invisible to recovery.
func (s *Server) unavailableLocked() error {
	switch {
	case s.killed:
		return errKilled
	case s.walErr != nil:
		return fmt.Errorf("%w: %v", errJournalFailed, s.walErr)
	}
	return nil
}

// IsDuplicateAck reports whether err is the duplicate-ack batch
// rejection (the same task acked twice in ONE report) — a malformed
// request (400), not a state conflict.  Exported so layers composing
// this server (internal/jobs) classify Report errors identically.
func IsDuplicateAck(err error) bool { return errors.Is(err, errDuplicateAck) }

// IsUnavailable reports whether err marks a dead or journal-wounded
// incarnation — a 503 for composing layers.
func IsUnavailable(err error) bool {
	return errors.Is(err, errKilled) || errors.Is(err, errJournalFailed)
}

// staleEpochError is the typed 409 body marker a fenced client resyncs
// on (via GET /status).
const staleEpochError = "stale epoch"

// staleEpochResponse is the 409 payload rejecting a stale-epoch report.
type staleEpochResponse struct {
	Error string `json:"error"`
	Epoch uint64 `json:"epoch"`
}

// fenceStale rejects a nonzero request epoch that does not match the
// serving incarnation.  The epoch is fixed per incarnation, so the
// unlocked read is safe; a zero epoch is a legacy client, accepted
// unchecked for wire compatibility.
func (s *Server) fenceStale(w http.ResponseWriter, reqEpoch uint64) bool {
	if reqEpoch == 0 || reqEpoch == s.epoch {
		return false
	}
	s.mu.Lock()
	s.staleReports++
	s.mu.Unlock()
	s.m.staleReports.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	_ = json.NewEncoder(w).Encode(staleEpochResponse{Error: staleEpochError, Epoch: s.epoch})
	return true
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	s.m.reqTask.Inc()
	if refused, _ := s.refuse(w, true); refused {
		return
	}
	v, state := s.allocate(r.Header.Get(clientHeader))
	switch state {
	case AllocOK:
		writeJSON(w, taskResponse{Task: v, Name: s.g.Name(v), Epoch: s.epoch})
	case AllocEmpty:
		w.WriteHeader(http.StatusNoContent)
	case AllocFinished:
		w.WriteHeader(http.StatusGone)
	}
}

// decodeTask reads a bounded {"task": id} body, distinguishing empty and
// oversized bodies from malformed JSON only in the error text.
func decodeTask(w http.ResponseWriter, r *http.Request) (doneRequest, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req doneRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	switch {
	case err == nil:
		return req, true
	case errors.Is(err, io.EOF):
		http.Error(w, "icserver: empty request body", http.StatusBadRequest)
	default:
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("icserver: request body exceeds %d bytes", tooLarge.Limit),
				http.StatusBadRequest)
		} else {
			http.Error(w, "icserver: malformed request body: "+err.Error(), http.StatusBadRequest)
		}
	}
	return doneRequest{}, false
}

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	s.m.reqDone.Inc()
	req, ok := decodeTask(w, r)
	if !ok {
		return
	}
	if refused, _ := s.refuse(w, false); refused {
		return
	}
	if s.fenceStale(w, req.Epoch) {
		return
	}
	k, err := s.complete(req.Task, r.Header.Get(clientHeader))
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, doneResponse{NewlyEligible: k})
}

func (s *Server) handleFailed(w http.ResponseWriter, r *http.Request) {
	s.m.reqFailed.Inc()
	req, ok := decodeTask(w, r)
	if !ok {
		return
	}
	if refused, _ := s.refuse(w, false); refused {
		return
	}
	if s.fenceStale(w, req.Epoch) {
		return
	}
	requeued, quarantined, err := s.fail(req.Task, r.Header.Get(clientHeader))
	if err != nil {
		writeCoreError(w, err)
		return
	}
	writeJSON(w, failedResponse{Requeued: requeued, Quarantined: quarantined})
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	s.m.reqTasks.Inc()
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req tasksRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "icserver: malformed /tasks body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.K < 1 {
		http.Error(w, fmt.Sprintf("icserver: batch size %d < 1", req.K), http.StatusBadRequest)
		return
	}
	if refused, _ := s.refuse(w, true); refused {
		return
	}
	batch, state := s.allocateBatch(req.K, r.Header.Get(clientHeader))
	if state == AllocFinished {
		w.WriteHeader(http.StatusGone)
		return
	}
	resp := tasksResponse{Tasks: make([]taskResponse, len(batch)), Epoch: s.epoch}
	for i, v := range batch {
		resp.Tasks[i] = taskResponse{Task: v, Name: s.g.Name(v), Epoch: s.epoch}
	}
	writeJSON(w, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.m.reqReport.Inc()
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req reportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "icserver: malformed /report body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.K < 0 {
		http.Error(w, fmt.Sprintf("icserver: piggyback batch size %d < 0", req.K), http.StatusBadRequest)
		return
	}
	refused, draining := s.refuse(w, false)
	if refused {
		return
	}
	if s.fenceStale(w, req.Epoch) {
		return
	}
	actor := r.Header.Get(clientHeader)
	k := req.K
	if draining {
		k = 0 // completions are welcome during drain; new grants are not
	}
	if k == 0 {
		rep, err := s.report(req.Done, req.Failed, actor)
		if err != nil {
			writeReportError(w, err)
			return
		}
		writeJSON(w, reportResponse{BatchReport: rep, Epoch: s.epoch})
		return
	}
	rep, batch, state, err := s.reportAllocate(req.Done, req.Failed, k, actor)
	if err != nil {
		writeReportError(w, err)
		return
	}
	resp := reportResponse{BatchReport: rep, Finished: state == AllocFinished, Epoch: s.epoch}
	for _, v := range batch {
		resp.Tasks = append(resp.Tasks, taskResponse{Task: v, Name: s.g.Name(v), Epoch: s.epoch})
	}
	writeJSON(w, resp)
}

// writeReportError maps a rejected report batch onto HTTP: a batch that
// acks the same task twice is malformed (400); everything else is a state
// conflict (409) — unless the server itself is down (typed 503).
func writeReportError(w http.ResponseWriter, err error) {
	if errors.Is(err, errDuplicateAck) {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeCoreError(w, err)
}

// writeCoreError maps a mutating-core error onto HTTP: a dead or wounded
// incarnation gets the typed 503 body (retryable — the successor will
// answer), anything else a 409 state conflict.
func writeCoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errKilled):
		writeUnavailable(w, ReasonKilled, err.Error())
	case errors.Is(err, errJournalFailed):
		writeUnavailable(w, ReasonJournalFailed, err.Error())
	default:
		http.Error(w, err.Error(), http.StatusConflict)
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := healthResponse{
		Status:        "ok",
		UptimeSeconds: s.now().Sub(s.start).Seconds(),
		Completed:     s.st.NumExecuted(),
		Total:         s.g.NumNodes(),
	}
	draining := s.draining
	s.mu.Unlock()
	if draining {
		h.Status = "draining"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(h)
		return
	}
	writeJSON(w, h)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// AllocState classifies the outcome of an allocation request.
type AllocState int

const (
	// AllocOK: a task was allocated.
	AllocOK AllocState = iota
	// AllocEmpty: nothing is currently ELIGIBLE and unallocated.
	AllocEmpty
	// AllocFinished: the computation is over — every task completed, or
	// every remaining task is quarantined (or blocked behind one).
	AllocFinished
)

// Allocate hands out the next task per the policy, reissuing expired
// leases and handed-back tasks first.  Exposed for in-process use (the
// simulator-free examples and tests drive it directly).
func (s *Server) Allocate() (dag.NodeID, AllocState) { return s.allocate("") }

func (s *Server) allocate(actor string) (dag.NodeID, AllocState) {
	if s.relax != nil {
		batch, state := s.relaxedAllocateBatch(1, actor)
		if state == AllocOK {
			return batch[0], AllocOK
		}
		return 0, state
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unavailableLocked() != nil {
		return 0, AllocEmpty // not a stall: the incarnation is dead or wounded
	}
	held := time.Now()
	v, state := s.allocateOneLocked(s.now(), actor)
	s.flushCursorLocked()
	if state == AllocEmpty {
		s.stalls++
		s.m.stalls.Inc()
	}
	s.syncGaugesLocked()
	s.maybeSnapshotLocked()
	s.m.lockHold.Observe(time.Since(held).Seconds())
	return v, state
}

// AllocateBatch grants up to k tasks in allocation order — expired-lease
// reissues first, then /failed hand-backs, then policy picks — under one
// lock acquisition, with one clock read and one gauge sync for the whole
// batch.  It returns AllocOK with 1..k tasks, AllocEmpty with none (the
// computation is live but nothing is currently allocatable), or
// AllocFinished (terminal).  This is the in-process form of POST /tasks.
func (s *Server) AllocateBatch(k int) ([]dag.NodeID, AllocState) { return s.allocateBatch(k, "") }

func (s *Server) allocateBatch(k int, actor string) ([]dag.NodeID, AllocState) {
	if s.relax != nil {
		return s.relaxedAllocateBatch(k, actor)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unavailableLocked() != nil {
		return nil, AllocEmpty // not a stall: the incarnation is dead or wounded
	}
	held := time.Now()
	batch, state := s.allocateBatchLocked(k, actor)
	s.maybeSnapshotLocked()
	s.m.lockHold.Observe(time.Since(held).Seconds())
	return batch, state
}

// allocateBatchLocked grants up to k tasks with one clock read for the
// whole batch, counts a stall only on a zero grant, then syncs gauges and
// observes grants-per-request once (caller holds s.mu).
func (s *Server) allocateBatchLocked(k int, actor string) ([]dag.NodeID, AllocState) {
	now := s.now()
	var batch []dag.NodeID
	state := AllocOK
	for len(batch) < k {
		v, st := s.allocateOneLocked(now, actor)
		if st != AllocOK {
			state = st
			break
		}
		batch = append(batch, v)
	}
	s.flushCursorLocked()
	if len(batch) > 0 {
		// A partial grant is not a stall and not terminal: the request got
		// work, just less than it asked for.
		state = AllocOK
	} else if state == AllocEmpty {
		s.stalls++
		s.m.stalls.Inc()
	}
	s.syncGaugesLocked()
	s.m.grantsPerRequest.Observe(float64(len(batch)))
	return batch, state
}

// allocateOneLocked picks the next task to grant (caller holds s.mu and
// passes one clock reading for the whole request).  It neither syncs
// gauges nor counts stalls — the per-request wrappers do both once.
func (s *Server) allocateOneLocked(now time.Time, actor string) (dag.NodeID, AllocState) {
	if s.st.Done() {
		s.recordRunEndLocked()
		return 0, AllocFinished
	}
	// Reissue expired leases in expiry order.  Heap entries are lazily
	// invalidated: an entry is live only while the lease map still holds
	// the grant time it was pushed with.
	if s.lease > 0 {
		for s.expiry.Len() > 0 {
			top := s.expiry[0]
			granted, held := s.leases[top.v]
			if !held || !granted.Equal(top.granted) {
				heap.Pop(&s.expiry) // stale: completed, failed, or re-leased
				continue
			}
			if now.Sub(granted) < s.lease {
				break // earliest lease not yet expired
			}
			heap.Pop(&s.expiry)
			s.m.leaseExpiries.Inc()
			s.walAppendLocked(wal.KindExpiry, top.v, 0)
			if s.maxAttempts > 0 && s.attempts[top.v] >= s.maxAttempts {
				delete(s.leases, top.v)
				s.quarantineLocked(top.v, "server")
				continue
			}
			s.reissues++
			s.m.reissues.Inc()
			s.grantLocked(top.v, now, actor)
			return top.v, AllocOK
		}
	}
	// Tasks handed back via /failed go out before new policy picks.
	for len(s.returned) > 0 {
		v := s.returned[0]
		s.returned = s.returned[1:]
		if s.done[v] || s.quarantined[v] {
			continue
		}
		if _, held := s.leases[v]; held {
			continue // duplicate hand-back; already re-leased
		}
		s.reissues++
		s.m.reissues.Inc()
		s.grantLocked(v, now, actor)
		return v, AllocOK
	}
	v, ok := s.inst.Next()
	if !ok {
		if len(s.leases) == 0 && len(s.quarantined) > 0 && len(s.extHeld) == 0 {
			// Nothing in flight and nothing allocatable: every remaining
			// task is quarantined or blocked behind one.  Terminal.
			// (A task held behind a cross-shard credit is progress another
			// shard will unlock, so it suppresses the degraded verdict.)
			s.degraded = true
			s.recordRunEndLocked()
			return 0, AllocFinished
		}
		return 0, AllocEmpty
	}
	s.grantLocked(v, now, actor)
	return v, AllocOK
}

// grantLocked records a lease grant (caller holds s.mu).  One heap push,
// no gauge sync: the per-request wrappers reconcile gauges once per
// request, not once per grant.
func (s *Server) grantLocked(v dag.NodeID, now time.Time, actor string) {
	s.attempts[v]++
	s.leases[v] = now
	if s.lease > 0 {
		heap.Push(&s.expiry, leaseEntry{v: v, granted: now})
	}
	if s.cursorInst != nil && s.attempts[v] == 1 {
		// First-time grants under replay came from the cursor policy in
		// strict order; the whole batch is journaled as one cursor
		// advance by flushCursorLocked before the lock is released.
		s.cursorDirty = true
	} else {
		s.walAppendLocked(wal.KindGrant, v, uint32(s.attempts[v]))
	}
	s.m.allocations.Inc()
	if s.trace != nil {
		s.trace.Record(obs.Event{Phase: obs.PhaseAllocate, Task: int(v), Name: s.g.Name(v),
			Actor: actor, Attempt: s.attempts[v], Eligible: s.st.NumEligible()})
	}
}

// flushCursorLocked journals the pending cursor advance as a single
// KindCursor record (caller holds s.mu).  Every allocation path flushes
// before releasing the lock, so a cursor grant is always durable before
// its task can be reported done and before any snapshot covers it.
func (s *Server) flushCursorLocked() {
	if !s.cursorDirty {
		return
	}
	s.cursorDirty = false
	cur := s.cursorInst.Cursor()
	delta := cur - int(s.lastCursor)
	s.lastCursor = int64(cur)
	s.walAppendLocked(wal.KindCursor, dag.NodeID(cur), uint32(delta))
}

// quarantineLocked moves v into the quarantined set (caller holds s.mu
// and has already removed any lease).
func (s *Server) quarantineLocked(v dag.NodeID, actor string) {
	s.quarantined[v] = true
	s.walAppendLocked(wal.KindQuarantine, v, 0)
	s.m.quarantines.Inc()
	if s.trace != nil {
		s.trace.Record(obs.Event{Phase: obs.PhaseQuarantine, Task: int(v), Name: s.g.Name(v),
			Actor: actor, Attempt: s.attempts[v], Eligible: s.st.NumEligible()})
	}
}

// Complete records a finished task, returning how many tasks became
// newly ELIGIBLE.  Duplicate completions (late lease-holders) are
// idempotent no-ops; a late completion of a quarantined task rescues it
// from the quarantined set.
func (s *Server) Complete(v dag.NodeID) (int, error) { return s.complete(v, "") }

func (s *Server) complete(v dag.NodeID, actor string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.unavailableLocked(); err != nil {
		return 0, err
	}
	defer s.maybeSnapshotLocked()
	defer s.syncGaugesLocked()
	return s.completeLocked(v, actor)
}

func (s *Server) completeLocked(v dag.NodeID, actor string) (int, error) {
	if int(v) < 0 || int(v) >= s.g.NumNodes() {
		return 0, fmt.Errorf("icserver: task %d out of range", v)
	}
	if s.done[v] {
		s.m.duplicateDone.Inc()
		return 0, nil // idempotent
	}
	if s.attempts[v] == 0 {
		return 0, fmt.Errorf("icserver: task %s was never allocated", s.g.Name(v))
	}
	packet, err := s.st.Execute(v)
	if err != nil {
		return 0, fmt.Errorf("icserver: %w", err)
	}
	s.done[v] = true
	delete(s.leases, v)
	if s.quarantined[v] {
		delete(s.quarantined, v) // a late result rescues a quarantined task
		s.m.rescues.Inc()
	}
	s.walAppendLocked(wal.KindDone, v, 0)
	s.offerLocked(packet)
	s.m.completions.Inc()
	if s.completionHook != nil {
		s.completionHook(v)
	}
	if s.trace != nil {
		s.trace.Record(obs.Event{Phase: obs.PhaseDone, Task: int(v), Name: s.g.Name(v),
			Actor: actor, Attempt: s.attempts[v], Eligible: s.st.NumEligible()})
	}
	if s.st.Done() {
		s.recordRunEndLocked()
	}
	return len(packet), nil
}

// Fail hands a task back early (the client's computation failed).  The
// task is requeued ahead of the policy, or quarantined once it has been
// handed out MaxAttempts times.  Failing a completed task is an
// idempotent no-op.
func (s *Server) Fail(v dag.NodeID) (requeued, quarantined bool, err error) {
	return s.fail(v, "")
}

func (s *Server) fail(v dag.NodeID, actor string) (requeued, quarantined bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.unavailableLocked(); err != nil {
		return false, false, err
	}
	defer s.maybeSnapshotLocked()
	defer s.syncGaugesLocked()
	return s.failLocked(v, actor)
}

func (s *Server) failLocked(v dag.NodeID, actor string) (requeued, quarantined bool, err error) {
	if int(v) < 0 || int(v) >= s.g.NumNodes() {
		return false, false, fmt.Errorf("icserver: task %d out of range", v)
	}
	if s.done[v] {
		return false, false, nil // completed elsewhere; nothing to do
	}
	if s.attempts[v] == 0 {
		return false, false, fmt.Errorf("icserver: task %s was never allocated", s.g.Name(v))
	}
	s.failed++
	s.m.failed.Inc()
	delete(s.leases, v)
	s.walAppendLocked(wal.KindFailed, v, 0)
	if s.quarantined[v] {
		return false, true, nil
	}
	if s.maxAttempts > 0 && s.attempts[v] >= s.maxAttempts {
		s.quarantineLocked(v, actor)
		return false, true, nil
	}
	if s.relax != nil {
		s.relax.Push(v)
	} else {
		s.returned = append(s.returned, v)
	}
	if s.trace != nil {
		s.trace.Record(obs.Event{Phase: obs.PhaseRetry, Task: int(v), Name: s.g.Name(v),
			Actor: actor, Attempt: s.attempts[v], Eligible: s.st.NumEligible()})
	}
	return true, false, nil
}

// errDuplicateAck rejects a /report batch that lists the same task twice;
// the handler maps it to 400 (a malformed batch, not a state conflict).
var errDuplicateAck = errors.New("icserver: task acked twice in one report batch")

// Report acks a mixed batch of completions and hand-backs under one lock
// acquisition — the in-process form of POST /report.  The batch is
// atomic: every listed task is validated first (in range, allocated at
// least once or already done, listed at most once across both lists), and
// on any violation nothing is applied.  Re-acking an already-completed
// task — the retried-report case — is an idempotent duplicate, not an
// error.
func (s *Server) Report(done, failed []dag.NodeID) (BatchReport, error) {
	return s.report(done, failed, "")
}

func (s *Server) report(done, failed []dag.NodeID, actor string) (BatchReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.unavailableLocked(); err != nil {
		return BatchReport{}, err
	}
	defer s.maybeSnapshotLocked()
	defer s.syncGaugesLocked()
	return s.reportLocked(done, failed, actor)
}

// ReportAllocate acks a report batch and, under the same single lock
// acquisition, grants up to k next tasks — the in-process form of POST
// /report with "k" set.  One lock hold covers validation, completions,
// hand-backs, and the next grant, so a steady-state batched client pays
// one round trip and one lock acquisition per batch.  A rejected report
// (atomic, nothing applied) grants nothing.
func (s *Server) ReportAllocate(done, failed []dag.NodeID, k int) (BatchReport, []dag.NodeID, AllocState, error) {
	return s.reportAllocate(done, failed, k, "")
}

func (s *Server) reportAllocate(done, failed []dag.NodeID, k int, actor string) (BatchReport, []dag.NodeID, AllocState, error) {
	if s.relax != nil {
		rep, err := s.report(done, failed, actor)
		if err != nil {
			return rep, nil, AllocEmpty, err
		}
		batch, state := s.relaxedAllocateBatch(k, actor)
		return rep, batch, state, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.unavailableLocked(); err != nil {
		return BatchReport{}, nil, AllocEmpty, err
	}
	held := time.Now()
	rep, err := s.reportLocked(done, failed, actor)
	if err != nil {
		s.syncGaugesLocked()
		return rep, nil, AllocEmpty, err
	}
	batch, state := s.allocateBatchLocked(k, actor)
	s.maybeSnapshotLocked()
	s.m.lockHold.Observe(time.Since(held).Seconds())
	return rep, batch, state, nil
}

func (s *Server) reportLocked(done, failed []dag.NodeID, actor string) (BatchReport, error) {
	seen := make(map[dag.NodeID]bool, len(done)+len(failed))
	for _, list := range [2][]dag.NodeID{done, failed} {
		for _, v := range list {
			if int(v) < 0 || int(v) >= s.g.NumNodes() {
				return BatchReport{}, fmt.Errorf("icserver: task %d out of range (batch rejected)", v)
			}
			if seen[v] {
				return BatchReport{}, fmt.Errorf("%w: task %s", errDuplicateAck, s.g.Name(v))
			}
			seen[v] = true
			if !s.done[v] && s.attempts[v] == 0 {
				return BatchReport{}, fmt.Errorf("icserver: task %s was never allocated (batch rejected)", s.g.Name(v))
			}
		}
	}
	// Validation passed: every task is allocated or already done, so the
	// locked cores below cannot fail (an allocated task's parents are all
	// executed — it was ELIGIBLE when granted).
	var rep BatchReport
	for _, v := range done {
		if s.done[v] {
			s.m.duplicateDone.Inc()
			rep.Duplicates++
			continue
		}
		k, err := s.completeLocked(v, actor)
		if err != nil {
			return rep, fmt.Errorf("icserver: report batch applied partially: %w", err)
		}
		rep.NewlyEligible += k
		rep.Completed++
	}
	for _, v := range failed {
		requeued, quarantined, err := s.failLocked(v, actor)
		if err != nil {
			return rep, fmt.Errorf("icserver: report batch applied partially: %w", err)
		}
		if requeued {
			rep.Requeued++
		}
		if quarantined {
			rep.Quarantined++
		}
	}
	return rep, nil
}

// syncGaugesLocked refreshes every gauge from the live state, keeping
// /metrics in lockstep with Status() (caller holds s.mu).
func (s *Server) syncGaugesLocked() {
	s.m.eligible.Set(float64(s.st.NumEligible()))
	s.m.leases.Set(float64(len(s.leases)))
	s.m.quarantined.Set(float64(len(s.quarantined)))
	s.m.completed.Set(float64(s.st.NumExecuted()))
	s.m.epoch.Set(float64(s.epoch))
}

// recordRunEndLocked records the terminal trace event once (caller holds
// s.mu).  The run ends either fully completed or degraded with a
// quarantined remainder.
func (s *Server) recordRunEndLocked() {
	if s.trace == nil || s.traceEnded {
		return
	}
	s.traceEnded = true
	ev := obs.Event{Phase: obs.PhaseRunEnd, Task: -1, Actor: "server",
		Eligible: s.st.NumEligible()}
	if s.degraded {
		ev.Err = fmt.Sprintf("degraded: %d tasks quarantined", len(s.quarantined))
	}
	s.trace.Record(ev)
}

// Shutdown drains the server gracefully: new /task requests get 503
// while in-flight leases may still complete (or fail).  Once no lease is
// outstanding (or ctx expires first), the journal — if any — gets a
// drain record, a final flush, and is closed, so a clean shutdown is
// durably distinguishable from a crash.  Shutdown is idempotent: a
// second call performs no work and waits for the first to finish (or
// for its own ctx), returning the first call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdownDone != nil {
		done := s.shutdownDone
		s.mu.Unlock()
		select {
		case <-done:
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.shutdownErr
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.shutdownDone = make(chan struct{})
	s.draining = true
	s.mu.Unlock()

	err := s.awaitDrain(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Journal the drain and flush even on a drain timeout: what happened
	// is durable either way, only the drain marker tells a clean story.
	if s.wal != nil && !s.killed {
		if err == nil {
			s.walAppendLocked(wal.KindDrain, -1, 0)
			err = s.walErr
		}
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
	}
	s.shutdownErr = err
	close(s.shutdownDone)
	return err
}

// awaitDrain blocks until no lease is outstanding or ctx expires.
func (s *Server) awaitDrain(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		n := len(s.leases)
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("icserver: shutdown with %d leases in flight: %w", n, ctx.Err())
		case <-tick.C:
		}
	}
}

// Kill terminates the incarnation abruptly — the in-process stand-in
// for SIGKILL in crash harnesses.  The journal (if any) is severed
// without a final flush, every subsequent request gets 503, and the
// in-memory state is abandoned; a successor rebuilds it with Recover.
func (s *Server) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return
	}
	s.killed = true
	if s.wal != nil {
		s.wal.Kill()
	}
}

// Status snapshots the execution.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		Total:        s.g.NumNodes(),
		Completed:    s.st.NumExecuted(),
		Eligible:     s.st.NumEligible(),
		Allocated:    len(s.leases),
		Stalls:       s.stalls,
		Reissues:     s.reissues,
		Failed:       s.failed,
		Quarantined:  len(s.quarantined),
		Epoch:        s.epoch,
		StaleReports: s.staleReports,
	}
}

// Epoch returns this incarnation's fencing token (1 for a fresh run,
// bumped once per Recover).
func (s *Server) Epoch() uint64 { return s.epoch }

// Completed reports whether task v has been completed (first-time done,
// surviving recovery).  Out-of-range tasks report false.  The sharded
// coordinator uses this to reconcile cross-shard credits after a
// restart.
func (s *Server) Completed(v dag.NodeID) bool {
	if int(v) < 0 || int(v) >= s.g.NumNodes() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done[v]
}

// Finished reports whether the execution is terminal: every task
// completed, or no further progress is possible (the remaining tasks are
// quarantined or blocked behind quarantined ones, with nothing in
// flight).  Use Status().Completed == Status().Total to distinguish full
// completion from graceful degradation.
func (s *Server) Finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Done() || s.degraded
}

// leaseEntry is one grant in the expiry heap; it is live only while the
// lease map still records the same grant time for the task.
type leaseEntry struct {
	v       dag.NodeID
	granted time.Time
}

// leaseHeap is a min-heap of lease grants ordered by grant time (with a
// fixed lease duration, grant order is expiry order).
type leaseHeap []leaseEntry

func (h leaseHeap) Len() int           { return len(h) }
func (h leaseHeap) Less(i, j int) bool { return h[i].granted.Before(h[j].granted) }
func (h leaseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *leaseHeap) Push(x any)        { *h = append(*h, x.(leaseEntry)) }
func (h *leaseHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
