// Package icserver is a working Internet-computing task server in the
// paper's setting (§1–§2): a server owns a computation-dag and hands
// ELIGIBLE tasks to remote clients over HTTP, allocating in the order a
// pluggable scheduling policy dictates (IC-optimal via heur.Static, or
// any heuristic).
//
// The quality model's idealization — tasks are executed in allocation
// order — cannot be enforced over a real network, so the server adds the
// one mechanism real IC systems use against slow or vanished clients
// (cf. the monitoring prescriptions the paper cites): an allocation
// lease.  A task not reported complete within the lease is re-offered to
// other clients; completions are idempotent, so a late original client
// causes no harm.
//
// Wire protocol (JSON):
//
//	POST /task          -> 200 {"task": id, "name": label}  |  204 (none eligible)  |  410 (done)
//	POST /done {"task"} -> 200 {"newlyEligible": k}
//	GET  /status        -> 200 {"total", "completed", "eligible", "allocated", "stalls", "reissues"}
package icserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/sched"
)

// Server allocates the tasks of one dag execution.  Create with New and
// mount via Handler (or use httptest / http.Server directly).
type Server struct {
	mu       sync.Mutex
	g        *dag.Dag
	st       *sched.State
	inst     heur.Instance
	lease    time.Duration
	now      func() time.Time // injectable clock for tests
	leases   map[dag.NodeID]time.Time
	done     map[dag.NodeID]bool
	stalls   int
	reissues int
}

// Option configures a Server.
type Option func(*Server)

// WithLease sets the allocation lease (default 30s; 0 disables
// reissuing).
func WithLease(d time.Duration) Option {
	return func(s *Server) { s.lease = d }
}

// WithClock injects a time source (tests).
func WithClock(now func() time.Time) Option {
	return func(s *Server) { s.now = now }
}

// New builds a server for one execution of g under the policy.
func New(g *dag.Dag, policy heur.Policy, opts ...Option) *Server {
	s := &Server{
		g:      g,
		st:     sched.NewState(g),
		inst:   policy.Start(g),
		lease:  30 * time.Second,
		now:    time.Now,
		leases: make(map[dag.NodeID]time.Time),
		done:   make(map[dag.NodeID]bool),
	}
	for _, o := range opts {
		o(s)
	}
	s.inst.Offer(s.st.Eligible())
	return s
}

// Handler returns the HTTP handler exposing the protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /task", s.handleTask)
	mux.HandleFunc("POST /done", s.handleDone)
	mux.HandleFunc("GET /status", s.handleStatus)
	return mux
}

// taskResponse is the /task payload.
type taskResponse struct {
	Task dag.NodeID `json:"task"`
	Name string     `json:"name"`
}

// doneRequest is the /done payload.
type doneRequest struct {
	Task dag.NodeID `json:"task"`
}

// doneResponse reports the packet size.
type doneResponse struct {
	NewlyEligible int `json:"newlyEligible"`
}

// Status is the /status payload.
type Status struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Eligible  int `json:"eligible"`
	Allocated int `json:"allocated"`
	Stalls    int `json:"stalls"`
	Reissues  int `json:"reissues"`
}

func (s *Server) handleTask(w http.ResponseWriter, r *http.Request) {
	v, state := s.Allocate()
	switch state {
	case AllocOK:
		writeJSON(w, taskResponse{Task: v, Name: s.g.Name(v)})
	case AllocEmpty:
		w.WriteHeader(http.StatusNoContent)
	case AllocFinished:
		w.WriteHeader(http.StatusGone)
	}
}

func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	var req doneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k, err := s.Complete(req.Task)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, doneResponse{NewlyEligible: k})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Status())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// AllocState classifies the outcome of an allocation request.
type AllocState int

const (
	// AllocOK: a task was allocated.
	AllocOK AllocState = iota
	// AllocEmpty: nothing is currently ELIGIBLE and unallocated.
	AllocEmpty
	// AllocFinished: the whole computation has completed.
	AllocFinished
)

// Allocate hands out the next task per the policy, reissuing expired
// leases first.  Exposed for in-process use (the simulator-free examples
// and tests drive it directly).
func (s *Server) Allocate() (dag.NodeID, AllocState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.st.Done() {
		return 0, AllocFinished
	}
	now := s.now()
	// Reissue expired leases: hand the longest-expired task back out
	// without consulting the policy (it has already been prioritized).
	if s.lease > 0 {
		var expired dag.NodeID = -1
		var oldest time.Time
		for v, t := range s.leases {
			if now.Sub(t) >= s.lease && (expired == -1 || t.Before(oldest)) {
				expired, oldest = v, t
			}
		}
		if expired >= 0 {
			s.leases[expired] = now
			s.reissues++
			return expired, AllocOK
		}
	}
	v, ok := s.inst.Next()
	if !ok {
		s.stalls++
		return 0, AllocEmpty
	}
	s.leases[v] = now
	return v, AllocOK
}

// Complete records a finished task, returning how many tasks became
// newly ELIGIBLE.  Duplicate completions (late lease-holders) are
// idempotent no-ops.
func (s *Server) Complete(v dag.NodeID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(v) < 0 || int(v) >= s.g.NumNodes() {
		return 0, fmt.Errorf("icserver: task %d out of range", v)
	}
	if s.done[v] {
		return 0, nil // idempotent
	}
	if _, ok := s.leases[v]; !ok {
		return 0, fmt.Errorf("icserver: task %s was never allocated", s.g.Name(v))
	}
	packet, err := s.st.Execute(v)
	if err != nil {
		return 0, fmt.Errorf("icserver: %w", err)
	}
	s.done[v] = true
	delete(s.leases, v)
	s.inst.Offer(packet)
	return len(packet), nil
}

// Status snapshots the execution.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		Total:     s.g.NumNodes(),
		Completed: s.st.NumExecuted(),
		Eligible:  s.st.NumEligible(),
		Allocated: len(s.leases),
		Stalls:    s.stalls,
		Reissues:  s.reissues,
	}
}

// Finished reports whether every task completed.
func (s *Server) Finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Done()
}
