package icserver

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"icsched/internal/dag"
	"icsched/internal/schedcache"
	"icsched/internal/wal"
)

// replayDag builds a small diamond-ladder dag with real parallelism.
func replayDag() *dag.Dag {
	b := dag.NewBuilder(10)
	arcs := [][2]dag.NodeID{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {3, 5},
		{4, 6}, {5, 6}, {6, 7}, {6, 8}, {7, 9}, {8, 9},
	}
	for _, a := range arcs {
		b.AddArc(a[0], a[1])
	}
	return b.MustBuild()
}

func driveToCompletion(t *testing.T, s *Server, k int) []dag.NodeID {
	t.Helper()
	var realized []dag.NodeID
	for i := 0; i < 10000; i++ {
		batch, state := s.AllocateBatch(k)
		switch state {
		case AllocFinished:
			return realized
		case AllocEmpty:
			t.Fatalf("server stalled after %d completions", len(realized))
		}
		for _, v := range batch {
			if _, err := s.Complete(v); err != nil {
				t.Fatalf("complete %d: %v", v, err)
			}
			realized = append(realized, v)
		}
	}
	t.Fatalf("did not finish")
	return nil
}

func journalKinds(t *testing.T, dir string) map[wal.Kind]int {
	t.Helper()
	rec, err := wal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[wal.Kind]int)
	for _, r := range rec.Records {
		kinds[r.Kind]++
	}
	return kinds
}

func TestReplayCursorJournaling(t *testing.T) {
	g := replayDag()
	order := g.TopoOrder()
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := Recover(dir, g, schedcache.Replay("IC-CACHED", order), wal.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	realized := driveToCompletion(t, s, 3)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Strict replay under serial drive realizes exactly the cached order.
	for i := range order {
		if realized[i] != order[i] {
			t.Fatalf("realized[%d] = %d, want %d", i, realized[i], order[i])
		}
	}
	kinds := journalKinds(t, dir)
	if kinds[wal.KindGrant] != 0 {
		t.Fatalf("replay run wrote %d per-task grant records", kinds[wal.KindGrant])
	}
	if kinds[wal.KindCursor] == 0 || kinds[wal.KindDone] != g.NumNodes() {
		t.Fatalf("journal kinds: %v", kinds)
	}
	// The journal folds with the order and covers every grant.
	rec, err := wal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	order64 := make([]int64, len(order))
	for i, v := range order {
		order64[i] = int64(v)
	}
	fold, err := rec.FoldOrdered(g.NumNodes(), order64)
	if err != nil {
		t.Fatal(err)
	}
	if fold.Cursor != int64(g.NumNodes()) || fold.NumExecuted() != g.NumNodes() {
		t.Fatalf("fold: cursor %d, executed %d", fold.Cursor, fold.NumExecuted())
	}
}

func TestReplayKillMidRunRecovers(t *testing.T) {
	g := replayDag()
	order := g.TopoOrder()
	dir := filepath.Join(t.TempDir(), "wal")
	policy := schedcache.Replay("IC-CACHED", order)
	s, err := Recover(dir, g, policy, wal.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Grant a batch, complete only part of it, then die: the journal
	// holds a cursor record whose tail tasks are still in flight.
	batch, state := s.AllocateBatch(2)
	if state != AllocOK || len(batch) == 0 {
		t.Fatalf("first grant: %v %v", batch, state)
	}
	if _, err := s.Complete(batch[0]); err != nil {
		t.Fatal(err)
	}
	s.Kill()

	s2, err := Recover(dir, g, schedcache.Replay("IC-CACHED", order), wal.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Epoch() != 2 {
		t.Fatalf("epoch = %d", s2.Epoch())
	}
	st := s2.Status()
	if st.Completed != 1 {
		t.Fatalf("completed = %d", st.Completed)
	}
	realized := driveToCompletion(t, s2, 3)
	if len(realized) != g.NumNodes()-1 {
		t.Fatalf("second incarnation completed %d tasks", len(realized))
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The fenced in-flight task was re-granted explicitly (attempt 2),
	// everything else flowed through cursor records.
	kinds := journalKinds(t, dir)
	if kinds[wal.KindGrant] != len(batch)-1 {
		t.Fatalf("re-grants: %d, want %d (kinds %v)", kinds[wal.KindGrant], len(batch)-1, kinds)
	}
	if kinds[wal.KindDone] != g.NumNodes() || kinds[wal.KindEpoch] != 2 {
		t.Fatalf("journal kinds: %v", kinds)
	}
}

func TestReplaySnapshotCarriesCursor(t *testing.T) {
	g := replayDag()
	order := g.TopoOrder()
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := Recover(dir, g, schedcache.Replay("IC-CACHED", order), wal.Options{SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every append triggers a snapshot, so recovery is dominated by
	// snapshot state rather than record replay.
	batch, _ := s.AllocateBatch(1)
	if _, err := s.Complete(batch[0]); err != nil {
		t.Fatal(err)
	}
	batch2, _ := s.AllocateBatch(2)
	s.Kill()

	s2, err := Recover(dir, g, schedcache.Replay("IC-CACHED", order), wal.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Status().Completed; got != 1 {
		t.Fatalf("completed = %d", got)
	}
	realized := driveToCompletion(t, s2, 4)
	if len(realized) != g.NumNodes()-1 {
		t.Fatalf("completed %d after recovery", len(realized))
	}
	_ = batch2
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestReplayExpiryReissueKeepsExplicitGrants(t *testing.T) {
	g := replayDag()
	order := g.TopoOrder()
	dir := filepath.Join(t.TempDir(), "wal")
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, err := Recover(dir, g, schedcache.Replay("IC-CACHED", order), wal.Options{SnapshotEvery: -1},
		WithLease(time.Second), WithMaxAttempts(5), WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	batch, state := s.AllocateBatch(1)
	if state != AllocOK || batch[0] != order[0] {
		t.Fatalf("grant: %v %v", batch, state)
	}
	now = now.Add(2 * time.Second) // expire the lease
	batch2, state := s.AllocateBatch(1)
	if state != AllocOK || batch2[0] != order[0] {
		t.Fatalf("reissue: %v %v", batch2, state)
	}
	if _, err := s.Complete(batch2[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	kinds := journalKinds(t, dir)
	if kinds[wal.KindExpiry] != 1 || kinds[wal.KindGrant] != 1 || kinds[wal.KindCursor] != 1 {
		t.Fatalf("journal kinds: %v", kinds)
	}
}
