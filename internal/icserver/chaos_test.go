package icserver_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"icsched/internal/dag"
	"icsched/internal/faults"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/mesh"
)

// TestChaosConcurrentClients drives 8 real clients over HTTP through a
// fault-injecting transport — dropped responses, injected 500s, latency
// spikes — plus compute failures and outright client crashes (respawned
// like a real fleet), and asserts the wavefront still computes the exact
// Pascal-triangle values with nothing lost.  Run with -race.
func TestChaosConcurrentClients(t *testing.T) {
	const (
		levels  = 12
		clients = 8
		seed    = 424242
	)
	g := mesh.OutMesh(levels)
	srv := icserver.New(g, optimalMeshPolicy(levels),
		icserver.WithLease(150*time.Millisecond),
		icserver.WithMaxAttempts(25))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	plan := faults.NewPlan(seed, faults.Rates{
		Crash:        0.08,
		ComputeError: 0.08,
		DropResponse: 0.05,
		HTTPError:    0.05,
		Latency:      0.05,
	})

	var mu sync.Mutex
	vals := make([]int64, g.NumNodes())
	compute := func(v dag.NodeID, _ string) error {
		if plan.Decide(faults.Crash) {
			return icserver.ErrCrash
		}
		if plan.Decide(faults.ComputeError) {
			return errors.New("injected compute failure")
		}
		mu.Lock()
		defer mu.Unlock()
		if g.IsSource(v) {
			vals[v] = 1
			return nil
		}
		var sum int64
		for _, p := range g.Parents(v) {
			sum += vals[p]
		}
		vals[v] = sum
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var crashMu sync.Mutex
	crashes := 0
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A crashed client is replaced by a fresh one, as a real IC
			// fleet replaces vanished volunteers.
			for {
				c := &icserver.Client{
					BaseURL:   ts.URL,
					HTTP:      &http.Client{Transport: plan.Transport(nil)},
					Compute:   compute,
					IdleWait:  time.Millisecond,
					RetryWait: time.Millisecond,
				}
				_, err := c.Run(ctx)
				if errors.Is(err, icserver.ErrCrash) {
					crashMu.Lock()
					crashes++
					crashMu.Unlock()
					continue
				}
				errs[i] = err
				return
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	if !srv.Finished() {
		t.Fatal("server not finished")
	}
	st := srv.Status()
	if st.Completed != g.NumNodes() {
		t.Fatalf("completed %d of %d tasks", st.Completed, g.NumNodes())
	}
	if st.Quarantined != 0 {
		t.Fatalf("%d tasks quarantined (lost)", st.Quarantined)
	}
	if st.Allocated != 0 {
		t.Fatalf("%d leases outstanding after completion", st.Allocated)
	}
	// Fault pressure must actually have materialized and been recovered.
	if crashes == 0 {
		t.Fatal("no client crashes occurred at an 8% crash rate")
	}
	if st.Failed == 0 {
		t.Fatal("no /failed hand-backs occurred at an 8% compute-error rate")
	}
	if st.Reissues == 0 {
		t.Fatal("no reissues despite crashes and failures")
	}

	// Bit-identical correctness: every mesh cell holds its binomial.
	for i := 0; i < levels; i++ {
		want := int64(1)
		for j := 0; j <= i; j++ {
			if got := vals[mesh.TriID(i, j)]; got != want {
				t.Fatalf("cell (%d,%d) = %d, want C(%d,%d) = %d", i, j, got, i, j, want)
			}
			want = want * int64(i-j) / int64(j+1)
		}
	}
	t.Logf("chaos run: %d crashes, status %+v, plan: %s", crashes, st, plan.Summary())
}

// TestChaosDuplicateDoneIdempotent sends the same /done twice over the
// wire (a client retrying a dropped response) and checks the second is a
// no-op.
func TestChaosDuplicateDoneIdempotent(t *testing.T) {
	g := dag.NewBuilder(2).MustBuild()
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	v, state := srv.Allocate()
	if state != icserver.AllocOK {
		t.Fatal("no allocation")
	}
	body := `{"task": ` + string(rune('0'+int(v))) + `}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/done", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("duplicate /done attempt %d -> %d", i, resp.StatusCode)
		}
	}
	if st := srv.Status(); st.Completed != 1 {
		t.Fatalf("completed = %d after duplicate /done, want 1", st.Completed)
	}
}
