package icserver

// The relaxed grant path: an alternative to the mutex-serialized
// ELIGIBLE-prefix scheduler that pops candidate tasks from a sharded
// lock-free core (internal/relaxed) *outside* the scheduler lock, then
// takes one short lock hold to stamp leases and journal the grants.
//
// What changes: the policy instance is bypassed — the eligible set lives
// in the relaxed core, fed by completion fan-out — and grants may come
// out in k-relaxed order (the popped task is the best of its shard, not
// the global best).
//
// What does not change: epoch fencing, WAL journaling, lease expiry,
// quarantine, and the batched /tasks / /report wire semantics.  Every
// grant is journaled under s.mu before it is returned, so the journal
// stays the serial source of truth and Recover is oblivious to which
// grant path produced it.  A crash between shard-pop and journal-append
// loses nothing: the popped-but-unjournaled task is simply absent from
// the journal, so recovery re-derives it as eligible and requeues it
// (the chaos kill lane proves this end to end).

import (
	"container/heap"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/relaxed"
	"icsched/internal/wal"
	"time"
)

// WithRelaxed routes allocation through a lock-free relaxed core with the
// given shard count (see internal/relaxed).  shards <= 0 keeps the exact
// locked path; shards == 1 is bit-identical to the locked path with a
// Static policy, larger values trade priority fidelity for grant
// throughput.
func WithRelaxed(shards int) Option {
	return func(s *Server) { s.relaxShards = shards }
}

// WithRelaxedPopHook installs a test hook invoked for every popped task
// after the lock-free claim but before the grant is journaled — the
// window a crash harness aims a kill at.  Test instrumentation only.
func WithRelaxedPopHook(h func(dag.NodeID)) Option {
	return func(s *Server) { s.relaxPopHook = h }
}

// RelaxedShards returns the configured shard count (0 = exact locked
// path).
func (s *Server) RelaxedShards() int { return s.relaxShards }

// relaxedOrder freezes the allocation priority for the relaxed core: the
// policy's own fixed order when it has one (heur.Static), otherwise a
// topological order.
func relaxedOrder(g *dag.Dag, policy heur.Policy) []dag.NodeID {
	if o, ok := policy.(heur.Ordered); ok {
		return o.Order()
	}
	return g.TopoOrder()
}

// relaxedAllocateBatch grants up to k tasks via the relaxed core.  The
// pops run lock-free; one short lock hold covers lease bookkeeping,
// journaling, and gauge sync for the whole batch.
func (s *Server) relaxedAllocateBatch(k int, actor string) ([]dag.NodeID, AllocState) {
	if k < 1 {
		k = 1
	}
	s.relaxPending.Add(int64(k))
	popped := s.relax.PopBatch(make([]dag.NodeID, 0, k), k)
	s.relaxPending.Add(int64(len(popped)) - int64(k))
	if h := s.relaxPopHook; h != nil {
		for _, v := range popped {
			h(v)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// The popped tasks stop being "pending" inside this lock hold: they
	// are either granted or pushed back before it releases, and the
	// terminal check below also runs under s.mu, so it cannot observe the
	// intermediate state.
	s.relaxPending.Add(-int64(len(popped)))
	if s.unavailableLocked() != nil {
		s.relax.PushAll(popped) // dead incarnation: recovery re-derives these
		return nil, AllocEmpty
	}
	held := time.Now()
	now := s.now()
	if s.lease > 0 {
		s.relaxedReclaimLocked(now)
	}
	batch := make([]dag.NodeID, 0, len(popped))
	grant := func(v dag.NodeID) {
		if s.done[v] || s.quarantined[v] {
			return // cannot happen from core invariants; drop defensively
		}
		if s.attempts[v] > 0 {
			s.reissues++
			s.m.reissues.Inc()
		}
		s.grantLocked(v, now, actor)
		batch = append(batch, v)
	}
	for _, v := range popped {
		grant(v)
	}
	// Top up from reclaimed-expiry or racing completion pushes so a short
	// ask doesn't cost the client an extra round trip.
	for len(batch) < k {
		v, ok := s.relax.Pop()
		if !ok {
			break
		}
		grant(v)
	}
	state := AllocOK
	if len(batch) == 0 {
		state = s.relaxedEmptyStateLocked()
		if state == AllocEmpty {
			s.stalls++
			s.m.stalls.Inc()
		}
	}
	s.syncGaugesLocked()
	s.m.grantsPerRequest.Observe(float64(len(batch)))
	s.maybeSnapshotLocked()
	s.m.lockHold.Observe(time.Since(held).Seconds())
	return batch, state
}

// relaxedReclaimLocked sweeps expired leases back into the core (or into
// quarantine once attempts are exhausted) — the relaxed-path counterpart
// of the expiry scan in allocateOneLocked (caller holds s.mu).
func (s *Server) relaxedReclaimLocked(now time.Time) {
	for s.expiry.Len() > 0 {
		top := s.expiry[0]
		granted, held := s.leases[top.v]
		if !held || !granted.Equal(top.granted) {
			heap.Pop(&s.expiry) // stale: completed, failed, or re-leased
			continue
		}
		if now.Sub(granted) < s.lease {
			break
		}
		heap.Pop(&s.expiry)
		s.m.leaseExpiries.Inc()
		s.walAppendLocked(wal.KindExpiry, top.v, 0)
		delete(s.leases, top.v)
		if s.maxAttempts > 0 && s.attempts[top.v] >= s.maxAttempts {
			s.quarantineLocked(top.v, "server")
			continue
		}
		s.relax.Push(top.v)
	}
}

// relaxedEmptyStateLocked classifies a zero grant: terminal when the dag
// is done, or when nothing is in flight anywhere — no lease, no task in
// the core, no pop in the pending window — and a quarantined remainder
// blocks the rest (caller holds s.mu).
func (s *Server) relaxedEmptyStateLocked() AllocState {
	if s.st.Done() {
		s.recordRunEndLocked()
		return AllocFinished
	}
	if len(s.leases) == 0 && len(s.quarantined) > 0 && len(s.extHeld) == 0 &&
		s.relaxPending.Load() == 0 && s.relax.Empty() {
		s.degraded = true
		s.recordRunEndLocked()
		return AllocFinished
	}
	return AllocEmpty
}

// offerLocked routes newly allocatable tasks to whichever grant engine is
// active, holding back tasks with outstanding cross-shard credits
// (caller holds s.mu).
func (s *Server) offerLocked(packet []dag.NodeID) {
	packet = s.extFilterLocked(packet)
	if s.relax != nil {
		s.relax.PushAll(packet)
		return
	}
	s.inst.Offer(packet)
}

// newRelaxedCore builds the core for this server's dag and policy.
func newRelaxedCore(g *dag.Dag, policy heur.Policy, shards int) *relaxed.Core {
	return relaxed.New(g, relaxedOrder(g, policy), shards, 0)
}
