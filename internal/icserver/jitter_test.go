package icserver

import (
	"sync"
	"testing"
	"time"
)

// TestJitterSeedReplay is the determinism half of the jitter fix: two
// clients with the same Seed must produce identical backoff sequences.
// (The old code seeded lazily from the global rand, so no two runs ever
// backed off the same way and chaos seeds were not replayable.)
func TestJitterSeedReplay(t *testing.T) {
	a := &Client{Seed: 99}
	b := &Client{Seed: 99}
	for i := 0; i < 200; i++ {
		d := time.Duration(1+i%16) * time.Millisecond
		ja, jb := a.jitter(d), b.jitter(d)
		if ja != jb {
			t.Fatalf("draw %d: seeds equal but jitter %v != %v", i, ja, jb)
		}
		if half := d / 2; half > 0 && (ja < half || ja >= d) {
			t.Fatalf("draw %d: jitter %v outside [%v, %v)", i, ja, half, d)
		}
	}
}

// TestJitterDefaultSeedsDistinct checks that unconfigured clients do not
// all collapse onto one sequence: the per-process default hands each its
// own seed.
func TestJitterDefaultSeedsDistinct(t *testing.T) {
	a := &Client{}
	b := &Client{}
	same := true
	for i := 0; i < 64; i++ {
		if a.jitter(time.Second) != b.jitter(time.Second) {
			same = false
		}
	}
	if same {
		t.Fatal("two default-seeded clients produced identical jitter sequences")
	}
}

// TestJitterTinyDuration covers the d/2 == 0 degenerate range.
func TestJitterTinyDuration(t *testing.T) {
	c := &Client{Seed: 1}
	if got := c.jitter(time.Nanosecond); got != time.Nanosecond {
		t.Fatalf("jitter(1ns) = %v", got)
	}
}

// TestJitterConcurrentInit hammers first use from many goroutines; run
// under -race this pins the once-guarded rng initialization.
func TestJitterConcurrentInit(t *testing.T) {
	c := &Client{Seed: 7}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				d := c.jitter(10 * time.Millisecond)
				if d < 5*time.Millisecond || d >= 10*time.Millisecond {
					t.Errorf("jitter out of range: %v", d)
					return
				}
			}
		}()
	}
	wg.Wait()
}
