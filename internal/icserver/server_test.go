package icserver_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icsched/internal/dag"
	"icsched/internal/faults"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/mesh"
	"icsched/internal/sched"
	"icsched/internal/workflows"
)

func optimalMeshPolicy(levels int) heur.Policy {
	g := mesh.OutMesh(levels)
	return heur.Static("IC-OPTIMAL", sched.Complete(g, mesh.OutMeshNonsinks(levels)))
}

func TestDistributedMeshExecution(t *testing.T) {
	levels := 10
	g := mesh.OutMesh(levels)
	srv := icserver.New(g, optimalMeshPolicy(levels))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var executed int64
	var wg sync.WaitGroup
	const clients = 6
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &icserver.Client{
				BaseURL: ts.URL,
				Compute: func(dag.NodeID, string) error {
					atomic.AddInt64(&executed, 1)
					return nil
				},
			}
			_, errs[i] = c.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if !srv.Finished() {
		t.Fatal("server not finished")
	}
	if executed != int64(g.NumNodes()) {
		t.Fatalf("executed %d of %d tasks", executed, g.NumNodes())
	}
	st := srv.Status()
	if st.Completed != g.NumNodes() || st.Allocated != 0 || st.Eligible != 0 {
		t.Fatalf("final status: %+v", st)
	}
}

func TestStatusEndpoint(t *testing.T) {
	g := workflows.Montage(6)
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	st, err := icserver.FetchStatus(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != g.NumNodes() || st.Completed != 0 || st.Eligible != len(g.Sources()) {
		t.Fatalf("initial status: %+v", st)
	}
}

func TestAllocationFollowsPolicyOrder(t *testing.T) {
	// With a single in-process consumer, allocations must come out in the
	// static schedule order.
	levels := 6
	g := mesh.OutMesh(levels)
	order := sched.Complete(g, mesh.OutMeshNonsinks(levels))
	srv := icserver.New(g, heur.Static("IC-OPTIMAL", order))
	for i := 0; ; i++ {
		v, state := srv.Allocate()
		if state != icserver.AllocOK {
			break
		}
		if v != order[i] {
			t.Fatalf("allocation %d = %v, want %v", i, v, order[i])
		}
		if _, err := srv.Complete(v); err != nil {
			t.Fatal(err)
		}
	}
	if !srv.Finished() {
		t.Fatal("not finished")
	}
}

func TestLeaseReissue(t *testing.T) {
	// A client takes a task and vanishes; after the lease expires the
	// task is reissued and the computation still completes.
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := dag.NewBuilder(2)
	b.AddArc(0, 1)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithLease(10*time.Second), icserver.WithClock(clock))

	v1, _ := srv.Allocate() // vanished client takes task 0
	if v1 != 0 {
		t.Fatalf("first allocation = %d", v1)
	}
	// Another client polls: nothing eligible (task 0 leased, task 1 blocked).
	if _, state := srv.Allocate(); state != icserver.AllocEmpty {
		t.Fatal("expected empty allocation while lease held")
	}
	// Lease expires; the same task is reissued.
	now = now.Add(11 * time.Second)
	v2, state := srv.Allocate()
	if state != icserver.AllocOK || v2 != 0 {
		t.Fatalf("reissue = %d (state %d)", v2, state)
	}
	if _, err := srv.Complete(0); err != nil {
		t.Fatal(err)
	}
	// The original (vanished) client's late completion is idempotent.
	if _, err := srv.Complete(0); err != nil {
		t.Fatalf("late duplicate completion: %v", err)
	}
	if srv.Status().Reissues != 1 {
		t.Fatalf("reissues = %d", srv.Status().Reissues)
	}
	v3, _ := srv.Allocate()
	if v3 != 1 {
		t.Fatalf("next allocation = %d", v3)
	}
	if _, err := srv.Complete(1); err != nil {
		t.Fatal(err)
	}
	if !srv.Finished() {
		t.Fatal("not finished")
	}
}

func TestDoneEndpointErrors(t *testing.T) {
	g := dag.NewBuilder(2).MustBuild()
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Bad JSON.
	resp, err := http.Post(ts.URL+"/done", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON -> %d", resp.StatusCode)
	}
	// Completion of a never-allocated task.
	resp, err = http.Post(ts.URL+"/done", "application/json", strings.NewReader(`{"task": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unallocated done -> %d", resp.StatusCode)
	}
}

func TestCompleteValidation(t *testing.T) {
	g := dag.NewBuilder(2).MustBuild()
	srv := icserver.New(g, heur.FIFO())
	if _, err := srv.Complete(5); err == nil {
		t.Fatal("out-of-range completion accepted")
	}
	if _, err := srv.Complete(0); err == nil {
		t.Fatal("unallocated completion accepted")
	}
}

func TestStallCounting(t *testing.T) {
	// Chain: a second concurrent request must stall.
	b := dag.NewBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithLease(0))
	if v, _ := srv.Allocate(); v != 0 {
		t.Fatal("bad first allocation")
	}
	if _, state := srv.Allocate(); state != icserver.AllocEmpty {
		t.Fatal("expected stall")
	}
	if srv.Status().Stalls != 1 {
		t.Fatalf("stalls = %d", srv.Status().Stalls)
	}
}

func TestDistributedComputationWithValues(t *testing.T) {
	// End-to-end over HTTP with real task payloads: Pascal accumulation
	// over a small mesh, values guarded by a mutex on the client side.
	levels := 7
	g := mesh.OutMesh(levels)
	srv := icserver.New(g, optimalMeshPolicy(levels))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mu sync.Mutex
	vals := make([]int64, g.NumNodes())
	compute := func(v dag.NodeID, _ string) error {
		mu.Lock()
		defer mu.Unlock()
		if g.IsSource(v) {
			vals[v] = 1
			return nil
		}
		var sum int64
		for _, p := range g.Parents(v) {
			sum += vals[p]
		}
		vals[v] = sum
		return nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &icserver.Client{BaseURL: ts.URL, Compute: compute}
			if _, err := c.Run(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Row i holds binomials; check the row sums are 2^i.
	for i := 0; i < levels; i++ {
		var sum int64
		for j := 0; j <= i; j++ {
			sum += vals[mesh.TriID(i, j)]
		}
		if sum != 1<<uint(i) {
			t.Fatalf("row %d sum = %d, want %d", i, sum, 1<<uint(i))
		}
	}
}

func TestFailedRequeuesAheadOfPolicy(t *testing.T) {
	// diamond: 0 -> {1,2} -> 3
	b := dag.NewBuilder(4)
	b.AddArc(0, 1)
	b.AddArc(0, 2)
	b.AddArc(1, 3)
	b.AddArc(2, 3)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO())
	if v, _ := srv.Allocate(); v != 0 {
		t.Fatal("bad first allocation")
	}
	if _, err := srv.Complete(0); err != nil {
		t.Fatal(err)
	}
	v1, _ := srv.Allocate() // task 1 to a client that will fail it
	requeued, quarantined, err := srv.Fail(v1)
	if err != nil || !requeued || quarantined {
		t.Fatalf("Fail(%d) = %v %v %v", v1, requeued, quarantined, err)
	}
	// The handed-back task goes out again before the policy's next pick.
	v2, _ := srv.Allocate()
	if v2 != v1 {
		t.Fatalf("after /failed, allocation = %d, want requeued %d", v2, v1)
	}
	st := srv.Status()
	if st.Failed != 1 || st.Reissues != 1 {
		t.Fatalf("status after fail/requeue: %+v", st)
	}
}

func TestQuarantineAfterMaxAttempts(t *testing.T) {
	b := dag.NewBuilder(2)
	b.AddArc(0, 1)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithMaxAttempts(3))
	for i := 0; i < 3; i++ {
		v, state := srv.Allocate()
		if state != icserver.AllocOK || v != 0 {
			t.Fatalf("attempt %d: alloc %d (state %d)", i, v, state)
		}
		_, q, err := srv.Fail(0)
		if err != nil {
			t.Fatal(err)
		}
		if wantQ := i == 2; q != wantQ {
			t.Fatalf("attempt %d: quarantined = %v", i, q)
		}
	}
	// Task 0 quarantined, task 1 blocked behind it, nothing in flight:
	// the computation is terminal-degraded, not hung.
	if _, state := srv.Allocate(); state != icserver.AllocFinished {
		t.Fatal("quarantined computation should report finished (degraded)")
	}
	if !srv.Finished() {
		t.Fatal("Finished() false on degraded-terminal execution")
	}
	st := srv.Status()
	if st.Quarantined != 1 || st.Completed != 0 {
		t.Fatalf("degraded status: %+v", st)
	}
}

func TestLateCompletionRescuesQuarantinedTask(t *testing.T) {
	b := dag.NewBuilder(2)
	b.AddArc(0, 1)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithMaxAttempts(1))
	if v, _ := srv.Allocate(); v != 0 {
		t.Fatal("bad allocation")
	}
	if _, q, _ := srv.Fail(0); !q {
		t.Fatal("MaxAttempts(1) task not quarantined on first failure")
	}
	// A slow original lease-holder reports success after quarantine.
	if _, err := srv.Complete(0); err != nil {
		t.Fatalf("late completion of quarantined task: %v", err)
	}
	st := srv.Status()
	if st.Quarantined != 0 || st.Completed != 1 {
		t.Fatalf("after rescue: %+v", st)
	}
	if v, _ := srv.Allocate(); v != 1 {
		t.Fatal("child not allocatable after rescue")
	}
}

func TestLeaseHeapReissuesInExpiryOrder(t *testing.T) {
	// Three independent tasks leased at staggered times must come back in
	// lease-grant order once expired.
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	g := dag.NewBuilder(3).MustBuild()
	srv := icserver.New(g, heur.FIFO(),
		icserver.WithLease(10*time.Second), icserver.WithClock(clock))
	var order []dag.NodeID
	for i := 0; i < 3; i++ {
		v, _ := srv.Allocate()
		order = append(order, v)
		now = now.Add(time.Second)
	}
	now = now.Add(20 * time.Second) // all three leases expired
	for i := 0; i < 3; i++ {
		v, state := srv.Allocate()
		if state != icserver.AllocOK || v != order[i] {
			t.Fatalf("reissue %d = %d (state %d), want %d", i, v, state, order[i])
		}
	}
	if srv.Status().Reissues != 3 {
		t.Fatalf("reissues = %d", srv.Status().Reissues)
	}
}

func TestDoneBodyLimits(t *testing.T) {
	g := dag.NewBuilder(2).MustBuild()
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Empty body.
	resp, err := http.Post(ts.URL+"/done", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body -> %d, want 400", resp.StatusCode)
	}
	// Oversized body (> 64 KiB).
	huge := `{"task": 0, "pad": "` + strings.Repeat("x", 70<<10) + `"}`
	resp, err = http.Post(ts.URL+"/done", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body -> %d, want 400", resp.StatusCode)
	}
	// /failed shares the same body handling.
	resp, err = http.Post(ts.URL+"/failed", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty /failed body -> %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	g := dag.NewBuilder(2).MustBuild()
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	status, code, err := icserver.FetchHealth(ctx, nil, ts.URL)
	if err != nil || status != "ok" || code != http.StatusOK {
		t.Fatalf("healthz = %q %d %v", status, code, err)
	}

	// Take a task, then drain: Shutdown must block until the in-flight
	// lease completes, and /task must refuse new work meanwhile.
	v, _ := srv.Allocate()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()
	waitDraining := func() {
		for i := 0; i < 200; i++ {
			if _, code, _ := icserver.FetchHealth(ctx, nil, ts.URL); code == http.StatusServiceUnavailable {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("server never reported draining")
	}
	waitDraining()
	resp, err := http.Post(ts.URL+"/task", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /task -> %d, want 503", resp.StatusCode)
	}
	// /status keeps answering while draining, so operators and resyncing
	// clients can still see progress and the epoch.
	st, err := icserver.FetchStatus(ctx, nil, ts.URL)
	if err != nil || st.Total != 2 || st.Epoch == 0 {
		t.Fatalf("draining /status = %+v, %v", st, err)
	}
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v with a lease in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := srv.Complete(v); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}

	// Shutdown with a stuck lease times out with an error.
	srv2 := icserver.New(dag.NewBuilder(1).MustBuild(), heur.FIFO())
	srv2.Allocate()
	ctx2, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv2.Shutdown(ctx2); err == nil {
		t.Fatal("Shutdown with stuck lease returned nil")
	}
}

func TestClientIdleBackoffGrows(t *testing.T) {
	// A server that always answers 204 then 410: the client's idle polls
	// must back off instead of hammering at a fixed cadence.
	var polls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/task" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		if polls.Add(1) <= 4 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.WriteHeader(http.StatusGone)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := &icserver.Client{BaseURL: ts.URL, IdleWait: 4 * time.Millisecond, IdleWaitMax: 64 * time.Millisecond}
	start := time.Now()
	stats, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.IdlePolls != 4 {
		t.Fatalf("idle polls = %d, want 4", stats.IdlePolls)
	}
	// Exponential backoff with equal jitter sleeps at least
	// 4/2 + 8/2 + 16/2 + 32/2 = 30ms across the four idle polls; a fixed
	// 4ms wait would take ~16ms.
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("4 idle polls finished in %v: backoff not growing", elapsed)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	// The /task endpoint fails twice (once 500, once mid-flight) before
	// succeeding; the client must retry and still run the whole dag.
	g := dag.NewBuilder(2).MustBuild()
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	plan := faults.NewPlan(0, faults.Rates{})
	plan.Schedule(faults.HTTPError, 0)
	plan.Schedule(faults.DropResponse, 1)
	c := &icserver.Client{
		BaseURL:   ts.URL,
		HTTP:      &http.Client{Transport: plan.Transport(nil)},
		RetryWait: time.Millisecond,
	}
	stats, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 2 {
		t.Fatalf("completed %d of 2 tasks", stats.Completed)
	}
	if stats.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", stats.Retries)
	}
	if !srv.Finished() {
		t.Fatal("server not finished")
	}
}

func TestClientComputeErrorHandsTaskBack(t *testing.T) {
	// First execution of task 0 fails; the client reports /failed and the
	// (re-computable) task succeeds on reissue.
	b := dag.NewBuilder(2)
	b.AddArc(0, 1)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var firstTry atomic.Bool
	firstTry.Store(true)
	c := &icserver.Client{
		BaseURL: ts.URL,
		Compute: func(v dag.NodeID, _ string) error {
			if v == 0 && firstTry.Swap(false) {
				return errors.New("flaky computation")
			}
			return nil
		},
	}
	stats, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 || stats.Completed != 2 {
		t.Fatalf("stats = %+v, want 1 failed hand-back and 2 completions", stats)
	}
	st := srv.Status()
	if st.Completed != 2 || st.Failed != 1 || st.Quarantined != 0 {
		t.Fatalf("server status = %+v", st)
	}
}

func TestClientCrashSentinelVanishes(t *testing.T) {
	g := dag.NewBuilder(1).MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithLease(time.Hour))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &icserver.Client{
		BaseURL: ts.URL,
		Compute: func(dag.NodeID, string) error { return icserver.ErrCrash },
	}
	_, err := c.Run(context.Background())
	if !errors.Is(err, icserver.ErrCrash) {
		t.Fatalf("err = %v, want ErrCrash", err)
	}
	// The crash reported nothing: the lease is still outstanding.
	st := srv.Status()
	if st.Allocated != 1 || st.Completed != 0 || st.Failed != 0 {
		t.Fatalf("status after crash = %+v", st)
	}
}
