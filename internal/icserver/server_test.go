package icserver_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/mesh"
	"icsched/internal/sched"
	"icsched/internal/workflows"
)

func optimalMeshPolicy(levels int) heur.Policy {
	g := mesh.OutMesh(levels)
	return heur.Static("IC-OPTIMAL", sched.Complete(g, mesh.OutMeshNonsinks(levels)))
}

func TestDistributedMeshExecution(t *testing.T) {
	levels := 10
	g := mesh.OutMesh(levels)
	srv := icserver.New(g, optimalMeshPolicy(levels))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var executed int64
	var wg sync.WaitGroup
	const clients = 6
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &icserver.Client{
				BaseURL: ts.URL,
				Compute: func(dag.NodeID, string) error {
					atomic.AddInt64(&executed, 1)
					return nil
				},
			}
			_, errs[i] = c.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if !srv.Finished() {
		t.Fatal("server not finished")
	}
	if executed != int64(g.NumNodes()) {
		t.Fatalf("executed %d of %d tasks", executed, g.NumNodes())
	}
	st := srv.Status()
	if st.Completed != g.NumNodes() || st.Allocated != 0 || st.Eligible != 0 {
		t.Fatalf("final status: %+v", st)
	}
}

func TestStatusEndpoint(t *testing.T) {
	g := workflows.Montage(6)
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	st, err := icserver.FetchStatus(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != g.NumNodes() || st.Completed != 0 || st.Eligible != len(g.Sources()) {
		t.Fatalf("initial status: %+v", st)
	}
}

func TestAllocationFollowsPolicyOrder(t *testing.T) {
	// With a single in-process consumer, allocations must come out in the
	// static schedule order.
	levels := 6
	g := mesh.OutMesh(levels)
	order := sched.Complete(g, mesh.OutMeshNonsinks(levels))
	srv := icserver.New(g, heur.Static("IC-OPTIMAL", order))
	for i := 0; ; i++ {
		v, state := srv.Allocate()
		if state != icserver.AllocOK {
			break
		}
		if v != order[i] {
			t.Fatalf("allocation %d = %v, want %v", i, v, order[i])
		}
		if _, err := srv.Complete(v); err != nil {
			t.Fatal(err)
		}
	}
	if !srv.Finished() {
		t.Fatal("not finished")
	}
}

func TestLeaseReissue(t *testing.T) {
	// A client takes a task and vanishes; after the lease expires the
	// task is reissued and the computation still completes.
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := dag.NewBuilder(2)
	b.AddArc(0, 1)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithLease(10*time.Second), icserver.WithClock(clock))

	v1, _ := srv.Allocate() // vanished client takes task 0
	if v1 != 0 {
		t.Fatalf("first allocation = %d", v1)
	}
	// Another client polls: nothing eligible (task 0 leased, task 1 blocked).
	if _, state := srv.Allocate(); state != icserver.AllocEmpty {
		t.Fatal("expected empty allocation while lease held")
	}
	// Lease expires; the same task is reissued.
	now = now.Add(11 * time.Second)
	v2, state := srv.Allocate()
	if state != icserver.AllocOK || v2 != 0 {
		t.Fatalf("reissue = %d (state %d)", v2, state)
	}
	if _, err := srv.Complete(0); err != nil {
		t.Fatal(err)
	}
	// The original (vanished) client's late completion is idempotent.
	if _, err := srv.Complete(0); err != nil {
		t.Fatalf("late duplicate completion: %v", err)
	}
	if srv.Status().Reissues != 1 {
		t.Fatalf("reissues = %d", srv.Status().Reissues)
	}
	v3, _ := srv.Allocate()
	if v3 != 1 {
		t.Fatalf("next allocation = %d", v3)
	}
	if _, err := srv.Complete(1); err != nil {
		t.Fatal(err)
	}
	if !srv.Finished() {
		t.Fatal("not finished")
	}
}

func TestDoneEndpointErrors(t *testing.T) {
	g := dag.NewBuilder(2).MustBuild()
	srv := icserver.New(g, heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Bad JSON.
	resp, err := http.Post(ts.URL+"/done", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON -> %d", resp.StatusCode)
	}
	// Completion of a never-allocated task.
	resp, err = http.Post(ts.URL+"/done", "application/json", strings.NewReader(`{"task": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unallocated done -> %d", resp.StatusCode)
	}
}

func TestCompleteValidation(t *testing.T) {
	g := dag.NewBuilder(2).MustBuild()
	srv := icserver.New(g, heur.FIFO())
	if _, err := srv.Complete(5); err == nil {
		t.Fatal("out-of-range completion accepted")
	}
	if _, err := srv.Complete(0); err == nil {
		t.Fatal("unallocated completion accepted")
	}
}

func TestStallCounting(t *testing.T) {
	// Chain: a second concurrent request must stall.
	b := dag.NewBuilder(3)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithLease(0))
	if v, _ := srv.Allocate(); v != 0 {
		t.Fatal("bad first allocation")
	}
	if _, state := srv.Allocate(); state != icserver.AllocEmpty {
		t.Fatal("expected stall")
	}
	if srv.Status().Stalls != 1 {
		t.Fatalf("stalls = %d", srv.Status().Stalls)
	}
}

func TestDistributedComputationWithValues(t *testing.T) {
	// End-to-end over HTTP with real task payloads: Pascal accumulation
	// over a small mesh, values guarded by a mutex on the client side.
	levels := 7
	g := mesh.OutMesh(levels)
	srv := icserver.New(g, optimalMeshPolicy(levels))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mu sync.Mutex
	vals := make([]int64, g.NumNodes())
	compute := func(v dag.NodeID, _ string) error {
		mu.Lock()
		defer mu.Unlock()
		if g.IsSource(v) {
			vals[v] = 1
			return nil
		}
		var sum int64
		for _, p := range g.Parents(v) {
			sum += vals[p]
		}
		vals[v] = sum
		return nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &icserver.Client{BaseURL: ts.URL, Compute: compute}
			if _, err := c.Run(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Row i holds binomials; check the row sums are 2^i.
	for i := 0; i < levels; i++ {
		var sum int64
		for j := 0; j <= i; j++ {
			sum += vals[mesh.TriID(i, j)]
		}
		if sum != 1<<uint(i) {
			t.Fatalf("row %d sum = %d, want %d", i, sum, 1<<uint(i))
		}
	}
}
