package icserver

import (
	"fmt"

	"icsched/internal/dag"
)

// External-dependency gating: the composition point for sharded
// multi-server scheduling (internal/shard).
//
// A shard's local dag carries only intra-shard arcs, so the local
// sched.State believes a task is ELIGIBLE as soon as its local parents
// executed — but a cross-shard arc u -> v means v must additionally
// wait for u's completion on another shard.  WithExternalDeps arms a
// gate between eligibility and the grant engine: a task with
// outstanding external parents is held back when the scheduler would
// offer it, and released by Credit calls (one per external parent,
// idempotent per (task, source) pair so the forwarding bus can re-
// deliver after a crash without double-counting).
//
// The gate sits in offerLocked, below BOTH grant engines — the exact
// policy instance and the lock-free relaxed core — so every shard
// configuration composes with it.  Recovery needs no extra journal
// state: a task that was ever granted had all external parents
// executed (they were credited before it passed the gate), and those
// completions are durable on their own shards, so requeued in-flight
// and handed-back tasks may be re-granted before re-crediting; only
// never-granted tasks wait behind the rebuilt gate until the
// coordinator re-delivers credits.

// WithExternalDeps arms cross-shard eligibility gating: need maps a
// task to its count of external (out-of-dag) parents.  A task with a
// positive count is offered to the grant engine only after its local
// parents have executed AND Credit has been called once per external
// parent.
func WithExternalDeps(need map[dag.NodeID]int) Option {
	return func(s *Server) {
		s.extNeed = make(map[dag.NodeID]int, len(need))
		for v, n := range need {
			if n > 0 {
				s.extNeed[v] = n
			}
		}
		s.extHeld = make(map[dag.NodeID]bool)
		s.extCredited = make(map[dag.NodeID]map[int64]bool)
	}
}

// extFilterLocked applies the external-dependency gate to an offer
// packet (caller holds s.mu).  Tasks with outstanding external credits
// move to the held set; the rest pass through.  Without external deps
// the packet is returned untouched.
func (s *Server) extFilterLocked(packet []dag.NodeID) []dag.NodeID {
	if s.extNeed == nil || len(s.extNeed) == 0 || len(packet) == 0 {
		return packet
	}
	pass := packet
	filtered := false
	for i, v := range packet {
		if s.extNeed[v] > 0 {
			if !filtered {
				pass = append([]dag.NodeID(nil), packet[:i]...)
				filtered = true
			}
			s.extHeld[v] = true
		} else if filtered {
			pass = append(pass, v)
		}
	}
	return pass
}

// Credit delivers one external-parent completion for task v; from
// identifies the external parent (the global node ID on the forwarding
// bus).  Duplicate credits for the same (v, from) pair are idempotent
// no-ops — applied reports whether this call changed state.  When the
// last outstanding credit lands on a task the local scheduler already
// found eligible, the task is released to the grant engine.
func (s *Server) Credit(v dag.NodeID, from int64) (applied bool, err error) {
	if int(v) < 0 || int(v) >= s.g.NumNodes() {
		return false, fmt.Errorf("icserver: credit for task %d out of range", v)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.extCredited == nil {
		return false, fmt.Errorf("icserver: credit without external deps configured")
	}
	if err := s.unavailableLocked(); err != nil {
		return false, err
	}
	set := s.extCredited[v]
	if set == nil {
		set = make(map[int64]bool, 1)
		s.extCredited[v] = set
	}
	if set[from] {
		return false, nil
	}
	set[from] = true
	if s.extNeed[v] > 0 {
		s.extNeed[v]--
		if s.extNeed[v] == 0 {
			delete(s.extNeed, v)
			if s.extHeld[v] {
				delete(s.extHeld, v)
				s.offerLocked([]dag.NodeID{v})
				s.syncGaugesLocked()
			}
		}
	}
	return true, nil
}
