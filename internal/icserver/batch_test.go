package icserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/mesh"
	"icsched/internal/sched"
)

// postJSON posts a raw body and returns status code + decoded-or-raw body.
func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func grantTasks(t *testing.T, base string, k int) (int, []dag.NodeID) {
	t.Helper()
	code, body := postJSON(t, base+"/tasks", fmt.Sprintf(`{"k":%d}`, k))
	if code != http.StatusOK {
		return code, nil
	}
	var resp struct {
		Tasks []struct {
			Task dag.NodeID `json:"task"`
			Name string     `json:"name"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal /tasks response %q: %v", body, err)
	}
	ids := make([]dag.NodeID, len(resp.Tasks))
	for i, task := range resp.Tasks {
		ids[i] = task.Task
	}
	return code, ids
}

// TestTasksBatchClampsToEligible walks a fan dag (source 0, leaves 1..5)
// through the batched protocol, checking at every step that a grant is
// the ELIGIBLE prefix of the allocation order: k is clamped to what is
// actually eligible, an oversized k is harmless, an empty grant is a 200
// with an empty list (the batched analog of the legacy 204), and a
// finished run answers 410.
func TestTasksBatchClampsToEligible(t *testing.T) {
	const leaves = 5
	b := dag.NewBuilder(1 + leaves)
	for i := 1; i <= leaves; i++ {
		b.AddArc(0, dag.NodeID(i))
	}
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithLease(0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	steps := []struct {
		k         int
		wantGrant []dag.NodeID
		report    string // body for a follow-up /report, "" for none
	}{
		// Only the source is eligible: k=3 must clamp to 1.
		{k: 3, wantGrant: []dag.NodeID{0}, report: `{"done":[0],"failed":[]}`},
		// All five leaves eligible now; a partial ask takes the prefix.
		{k: 2, wantGrant: []dag.NodeID{1, 2}},
		// Oversized ask grants exactly the remaining three.
		{k: 100, wantGrant: []dag.NodeID{3, 4, 5}},
		// Everything leased out: empty grant, not an error.
		{k: 4, wantGrant: []dag.NodeID{},
			report: `{"done":[1,2,3,4,5],"failed":[]}`},
	}
	for i, step := range steps {
		code, got := grantTasks(t, ts.URL, step.k)
		if code != http.StatusOK {
			t.Fatalf("step %d: /tasks k=%d returned %d", i, step.k, code)
		}
		if len(got) != len(step.wantGrant) {
			t.Fatalf("step %d: grant %v, want %v", i, got, step.wantGrant)
		}
		for j := range got {
			if got[j] != step.wantGrant[j] {
				t.Fatalf("step %d: grant %v, want %v (schedule order)", i, got, step.wantGrant)
			}
		}
		if step.report != "" {
			if code, body := postJSON(t, ts.URL+"/report", step.report); code != http.StatusOK {
				t.Fatalf("step %d: /report returned %d: %s", i, code, body)
			}
		}
	}
	if code, _ := grantTasks(t, ts.URL, 1); code != http.StatusGone {
		t.Fatalf("/tasks after completion returned %d, want 410", code)
	}
	if !srv.Finished() {
		t.Fatal("server not finished")
	}
}

// TestBatchProtocolRejections is the table-driven bad-input sweep for
// the two batched endpoints: non-positive k, malformed JSON, duplicate
// acks within one batch, and acks of never-allocated tasks.
func TestBatchProtocolRejections(t *testing.T) {
	cases := []struct {
		name     string
		path     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"k zero", "/tasks", `{"k":0}`, http.StatusBadRequest, "batch size"},
		{"k negative", "/tasks", `{"k":-4}`, http.StatusBadRequest, "batch size"},
		{"tasks malformed", "/tasks", `{"k":`, http.StatusBadRequest, "malformed"},
		{"tasks wrong type", "/tasks", `{"k":"ten"}`, http.StatusBadRequest, "malformed"},
		{"report malformed", "/report", `{"done":[`, http.StatusBadRequest, "malformed"},
		{"report duplicate done", "/report", `{"done":[0,0]}`, http.StatusBadRequest, "twice"},
		{"report done and failed overlap", "/report", `{"done":[0],"failed":[0]}`,
			http.StatusBadRequest, "twice"},
		{"report unknown id", "/report", `{"done":[99]}`, http.StatusConflict, "out of range"},
		{"report never allocated", "/report", `{"done":[1]}`, http.StatusConflict, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := dag.NewBuilder(2)
			b.AddArc(0, 1)
			srv := icserver.New(b.MustBuild(), heur.FIFO())
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			// Lease task 0 so "duplicate" cases fail on duplication, not
			// on never-allocated.
			if _, state := srv.Allocate(); state != icserver.AllocOK {
				t.Fatalf("setup allocate: %v", state)
			}
			code, body := postJSON(t, ts.URL+tc.path, tc.body)
			if code != tc.wantCode {
				t.Fatalf("%s %s: code %d, want %d (%s)", tc.path, tc.body, code, tc.wantCode, body)
			}
			if tc.wantErr != "" && !strings.Contains(string(body), tc.wantErr) {
				t.Fatalf("%s error %q does not mention %q", tc.path, body, tc.wantErr)
			}
			// Rejection must be atomic: nothing in the batch may have
			// been applied.
			if st := srv.Status(); st.Completed != 0 || st.Failed != 0 || st.Quarantined != 0 {
				t.Fatalf("rejected batch mutated state: %+v", st)
			}
		})
	}
}

// TestReportAtomicThenRetry checks that after an all-or-nothing
// rejection the client can fix the batch and re-report successfully,
// and that cross-request duplicate acks remain idempotent (counted, not
// rejected) — the property a retried /report after a dropped response
// depends on.
func TestReportAtomicThenRetry(t *testing.T) {
	b := dag.NewBuilder(3)
	b.AddArc(0, 2)
	b.AddArc(1, 2)
	srv := icserver.New(b.MustBuild(), heur.FIFO())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, got := grantTasks(t, ts.URL, 2); len(got) != 2 {
		t.Fatalf("grant %v, want [0 1]", got)
	}
	// Duplicate inside the batch: whole batch rejected, including the
	// valid ack of task 1.
	if code, _ := postJSON(t, ts.URL+"/report", `{"done":[1,0,1]}`); code != http.StatusBadRequest {
		t.Fatalf("duplicate batch returned %d, want 400", code)
	}
	if st := srv.Status(); st.Completed != 0 {
		t.Fatalf("rejected batch completed %d tasks", st.Completed)
	}
	// Fixed batch applies in full.
	code, body := postJSON(t, ts.URL+"/report", `{"done":[1,0]}`)
	if code != http.StatusOK {
		t.Fatalf("fixed batch returned %d: %s", code, body)
	}
	var rep icserver.BatchReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 || rep.NewlyEligible != 1 || rep.Duplicates != 0 {
		t.Fatalf("batch report %+v, want 2 completed unlocking task 2", rep)
	}
	// The same batch again — a retry after a lost response — is an
	// idempotent no-op reported as duplicates.
	code, body = postJSON(t, ts.URL+"/report", `{"done":[1,0]}`)
	if code != http.StatusOK {
		t.Fatalf("replayed batch returned %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 0 || rep.Duplicates != 2 {
		t.Fatalf("replayed batch report %+v, want 2 duplicates", rep)
	}
}

// TestReportPiggybackGrant walks the one-round-trip steady state: a
// /report carrying "k" acks its batch and returns the next grant, the
// grant is the ELIGIBLE prefix exactly as /tasks would give it, the
// terminal piggyback answers "finished" (the 410 analog), a negative k is
// rejected, and a rejected report grants nothing.
func TestReportPiggybackGrant(t *testing.T) {
	const leaves = 3 // fan: source 0, leaves 1..3
	b := dag.NewBuilder(1 + leaves)
	for i := 1; i <= leaves; i++ {
		b.AddArc(0, dag.NodeID(i))
	}
	srv := icserver.New(b.MustBuild(), heur.FIFO(), icserver.WithLease(0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	report := func(body string) (int, struct {
		icserver.BatchReport
		Tasks []struct {
			Task dag.NodeID `json:"task"`
		} `json:"tasks"`
		Finished bool `json:"finished"`
	}) {
		t.Helper()
		code, raw := postJSON(t, ts.URL+"/report", body)
		var resp struct {
			icserver.BatchReport
			Tasks []struct {
				Task dag.NodeID `json:"task"`
			} `json:"tasks"`
			Finished bool `json:"finished"`
		}
		if code == http.StatusOK {
			if err := json.Unmarshal(raw, &resp); err != nil {
				t.Fatalf("unmarshal /report response %q: %v", raw, err)
			}
		}
		return code, resp
	}

	if code, body := postJSON(t, ts.URL+"/report", `{"done":[],"k":-1}`); code != http.StatusBadRequest ||
		!strings.Contains(string(body), "piggyback") {
		t.Fatalf("negative k returned %d: %s, want 400 piggyback rejection", code, body)
	}
	if _, got := grantTasks(t, ts.URL, 1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("bootstrap grant %v, want [0]", got)
	}
	// A rejected report must not grant: task 2 was never allocated.
	if code, _ := report(`{"done":[2],"k":3}`); code != http.StatusConflict {
		t.Fatalf("never-allocated piggyback report returned %d, want 409", code)
	}
	if st := srv.Status(); st.Allocated != 1 {
		t.Fatalf("rejected piggyback report changed leases: %+v", st)
	}
	// Ack the source and take the next two leaves in the same request.
	code, resp := report(`{"done":[0],"k":2}`)
	if code != http.StatusOK || resp.Completed != 1 || resp.NewlyEligible != leaves {
		t.Fatalf("piggyback ack returned %d %+v", code, resp.BatchReport)
	}
	if len(resp.Tasks) != 2 || resp.Tasks[0].Task != 1 || resp.Tasks[1].Task != 2 || resp.Finished {
		t.Fatalf("piggyback grant %+v, want tasks [1 2]", resp)
	}
	// Oversized ask clamps to the one remaining leaf.
	code, resp = report(`{"done":[1,2],"k":100}`)
	if code != http.StatusOK || len(resp.Tasks) != 1 || resp.Tasks[0].Task != 3 || resp.Finished {
		t.Fatalf("second piggyback returned %d %+v, want task [3]", code, resp)
	}
	// The terminal ack: nothing left, finished flag set.
	code, resp = report(`{"done":[3],"k":4}`)
	if code != http.StatusOK || len(resp.Tasks) != 0 || !resp.Finished {
		t.Fatalf("terminal piggyback returned %d %+v, want finished", code, resp)
	}
	if !srv.Finished() {
		t.Fatal("server not finished after terminal piggyback")
	}
}

// TestMixedLegacyAndBatchedClients runs both protocols against one
// server at once: every task must complete exactly once and both client
// kinds must make progress.  Exactly-once and totals are hard invariants
// of every attempt; "both kinds progressed" depends on goroutine
// scheduling (batched clients can drain a small dag before a legacy
// client lands its first grant), so that one property retries a few
// fresh fleets before calling starvation a failure.
func TestMixedLegacyAndBatchedClients(t *testing.T) {
	levels := 9
	const attempts = 5
	for attempt := 1; attempt <= attempts; attempt++ {
		legacy, batched := runMixedFleet(t, levels)
		if legacy > 0 && batched > 0 {
			return
		}
		t.Logf("attempt %d: one protocol starved: legacy=%d batched=%d", attempt, legacy, batched)
	}
	t.Fatalf("one protocol starved in all %d attempts", attempts)
}

// runMixedFleet drives one mixed fleet to completion, fatals on any
// correctness violation, and returns the per-protocol completion split.
func runMixedFleet(t *testing.T, levels int) (legacy, batched int) {
	t.Helper()
	g := mesh.OutMesh(levels)
	srv := icserver.New(g, optimalMeshPolicy(levels), icserver.WithLease(0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mu sync.Mutex
	seen := make([]int, g.NumNodes())
	compute := func(v dag.NodeID, _ string) error {
		mu.Lock()
		defer mu.Unlock()
		seen[v]++
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const fleet = 6
	var wg sync.WaitGroup
	stats := make([]icserver.Stats, fleet)
	errs := make([]error, fleet)
	for c := 0; c < fleet; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &icserver.Client{
				BaseURL: ts.URL,
				Compute: compute,
				ID:      fmt.Sprintf("mixed-%d", c),
				Seed:    int64(c + 1),
			}
			if c%2 == 1 {
				cl.Batch = 4
			}
			stats[c], errs[c] = cl.Run(ctx)
		}(c)
	}
	wg.Wait()

	total := 0
	for c := 0; c < fleet; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		total += stats[c].Completed
		if c%2 == 1 {
			batched += stats[c].Completed
			if stats[c].Completed > 0 && stats[c].Batches == 0 {
				t.Fatalf("batched client %d completed %d tasks in 0 batches", c, stats[c].Completed)
			}
		} else {
			legacy += stats[c].Completed
			if stats[c].Batches != 0 {
				t.Fatalf("legacy client %d reported %d batches", c, stats[c].Batches)
			}
		}
	}
	if total != g.NumNodes() {
		t.Fatalf("fleet completed %d, want %d", total, g.NumNodes())
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("task %d computed %d times", v, n)
		}
	}
	if !srv.Finished() {
		t.Fatal("server not finished")
	}
	return legacy, batched
}

// TestGaugesAfterBatchGrant pins the wart fix: gauges are reconciled
// once per request, and after a /tasks batch grant the scraped values
// must reflect the whole batch (leases = batch size, eligible shrunk by
// the grant), with grants_per_request recording one sample of size k.
func TestGaugesAfterBatchGrant(t *testing.T) {
	const leaves = 6
	b := dag.NewBuilder(1 + leaves)
	for i := 1; i <= leaves; i++ {
		b.AddArc(0, dag.NodeID(i))
	}
	srv := icserver.New(b.MustBuild(), heur.FIFO(), icserver.WithLease(time.Minute))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := postJSON(t, ts.URL+"/report", `{"done":[]}`); code != http.StatusOK {
		t.Fatalf("empty report returned %d: %s", code, body)
	}
	if _, got := grantTasks(t, ts.URL, 1); len(got) != 1 {
		t.Fatalf("source grant %v", got)
	}
	if code, _ := postJSON(t, ts.URL+"/report", `{"done":[0]}`); code != http.StatusOK {
		t.Fatal("report source")
	}
	// All six leaves eligible; one request grants four.
	if _, got := grantTasks(t, ts.URL, 4); len(got) != 4 {
		t.Fatalf("batch grant %v, want 4 tasks", got)
	}
	m := scrapeMetrics(t, ts.URL)
	checks := map[string]float64{
		"icserver_leases": 4,
		// ELIGIBLE is the §2.2 measure over *executed* parents: leasing
		// a task does not shrink it, so all six leaves still count.
		"icserver_eligible":                              6,
		"icserver_completed":                             1,
		"icserver_grants_per_request_count":              2, // k=1 grant + k=4 grant
		"icserver_grants_per_request_sum":                5,
		`icserver_request_seconds_count{path="/tasks"}`:  2,
		`icserver_request_seconds_count{path="/report"}`: 2,
	}
	for name, want := range checks {
		if got := m[name]; got != want {
			t.Fatalf("%s = %v, want %v\nscrape: %v", name, got, want, m)
		}
	}
}

// TestBatchSingleClockRead pins the other wart fix: one batch request
// reads the injected clock exactly once, however many tasks it grants.
func TestBatchSingleClockRead(t *testing.T) {
	calls := 0
	clock := func() time.Time { calls++; return time.Unix(int64(calls), 0) }
	levels := 4
	g := mesh.OutMesh(levels)
	srv := icserver.New(g, heur.Static("order", sched.Complete(g, mesh.OutMeshNonsinks(levels))),
		icserver.WithLease(time.Hour), icserver.WithClock(clock))
	before := calls
	if batch, state := srv.AllocateBatch(1); state != icserver.AllocOK || len(batch) != 1 {
		t.Fatalf("first grant %v, %v", batch, state)
	}
	if calls != before+1 {
		t.Fatalf("k=1 grant read the clock %d times, want 1", calls-before)
	}
	if _, err := srv.Report([]dag.NodeID{0}, nil); err != nil {
		t.Fatal(err)
	}
	before = calls
	batch, state := srv.AllocateBatch(8)
	if state != icserver.AllocOK || len(batch) < 2 {
		t.Fatalf("batch grant %v, %v", batch, state)
	}
	if calls != before+1 {
		t.Fatalf("k=8 grant of %d tasks read the clock %d times, want 1", len(batch), calls-before)
	}
}

// TestBatchedClientAdaptiveSizing checks the client-side ramp: against a
// wide dag the ask doubles after full grants, so the number of /tasks
// round-trips is far below the task count; against constant starvation
// it resets to 1.
func TestBatchedClientAdaptiveSizing(t *testing.T) {
	const leaves = 32
	b := dag.NewBuilder(1 + leaves)
	for i := 1; i <= leaves; i++ {
		b.AddArc(0, dag.NodeID(i))
	}
	g := b.MustBuild()
	srv := icserver.New(g, heur.FIFO(), icserver.WithLease(0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := &icserver.Client{BaseURL: ts.URL, Batch: 16, ID: "ramp", Seed: 1}
	st, err := cl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != g.NumNodes() {
		t.Fatalf("completed %d, want %d", st.Completed, g.NumNodes())
	}
	// Serial client, 33 tasks: source alone (ask ramps 1,2,4,... while
	// grants stay clamped), then the leaf layer in doubling batches.
	// Without ramping this would be 33 batches; with it, far fewer.
	if st.Batches >= 12 {
		t.Fatalf("ramp ineffective: %d tasks took %d batches", st.Completed, st.Batches)
	}
	if !srv.Finished() {
		t.Fatal("server not finished")
	}
}
