package faults

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport wraps an http.RoundTripper so the plan drives faults on the
// real wire protocol:
//
//   - Latency: sleeps p.LatencySpike (default 2ms) before the request;
//   - HTTPError: the request is lost before reaching the server and a
//     synthetic 500 comes back (the handler never ran);
//   - DropResponse: the request IS delivered and processed, but the
//     response is dropped on the way back (the nasty case: the client
//     must retry an operation the server already performed, exercising
//     idempotency).
//
// base nil means http.DefaultTransport.
func (p *Plan) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{plan: p, base: base}
}

// LatencySpike is the delay a Latency fault injects (default 2ms).  Set
// before use; not synchronized.
func (p *Plan) WithLatency(d time.Duration) *Plan {
	p.latency = d
	return p
}

type transport struct {
	plan *Plan
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.plan
	if p.Decide(Latency) {
		d := p.latency
		if d <= 0 {
			d = 2 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if p.Decide(HTTPError) {
		// The request never reaches the handler; consume the body so the
		// connection stays reusable and synthesize a 500.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			Status:     "500 Internal Server Error (injected)",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("injected server error\n")),
			Request:    req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if p.Decide(DropResponse) {
		// The server processed the request; lose the reply.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("faults: response to %s %s dropped: %w",
			req.Method, req.URL.Path, ErrInjected)
	}
	return resp, nil
}
