package faults_test

import (
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"icsched/internal/faults"
)

func TestDecisionSequenceIsReproducible(t *testing.T) {
	rates := faults.Rates{Crash: 0.3, ComputeError: 0.2, HTTPError: 0.1}
	a := faults.NewPlan(7, rates)
	b := faults.NewPlan(7, rates)
	for i := 0; i < 1000; i++ {
		for _, k := range []faults.Kind{faults.Crash, faults.ComputeError, faults.HTTPError} {
			if a.Decide(k) != b.Decide(k) {
				t.Fatalf("decision %d of %s diverged between same-seed plans", i, k)
			}
		}
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("summaries diverged: %q vs %q", a.Summary(), b.Summary())
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := faults.NewPlan(1, faults.Rates{Crash: 0.5})
	b := faults.NewPlan(2, faults.Rates{Crash: 0.5})
	same := true
	for i := 0; i < 200; i++ {
		if a.Decide(faults.Crash) != b.Decide(faults.Crash) {
			same = false
		}
	}
	if same {
		t.Fatal("200 decisions identical across different seeds")
	}
}

func TestRateIsHonoredApproximately(t *testing.T) {
	const n, rate = 20000, 0.15
	p := faults.NewPlan(42, faults.Rates{ComputeError: rate})
	for i := 0; i < n; i++ {
		p.Decide(faults.ComputeError)
	}
	got := float64(p.Injected(faults.ComputeError)) / n
	if math.Abs(got-rate) > 0.02 {
		t.Fatalf("injected fraction %.3f, want ≈%.2f", got, rate)
	}
}

func TestZeroRateNeverFires(t *testing.T) {
	p := faults.NewPlan(9, faults.Rates{})
	for i := 0; i < 500; i++ {
		if p.Decide(faults.Crash) {
			t.Fatal("zero-rate plan injected a fault")
		}
	}
}

func TestExplicitSchedule(t *testing.T) {
	p := faults.NewPlan(0, faults.Rates{})
	p.Schedule(faults.Crash, 2)
	p.Schedule(faults.Crash, 5)
	var fired []int
	for i := 0; i < 8; i++ {
		if p.Decide(faults.Crash) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("scheduled faults fired at %v, want [2 5]", fired)
	}
}

func TestTransportInjectsHTTPError(t *testing.T) {
	var handled int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled++
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	p := faults.NewPlan(0, faults.Rates{})
	p.Schedule(faults.HTTPError, 0)
	client := &http.Client{Transport: p.Transport(nil)}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected error -> %d, want 500", resp.StatusCode)
	}
	if handled != 0 {
		t.Fatal("HTTPError fault must not reach the handler")
	}
	// Next request passes through.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" || handled != 1 {
		t.Fatalf("clean request: body %q, handled %d", body, handled)
	}
}

func TestTransportDropsResponseAfterDelivery(t *testing.T) {
	var handled int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled++
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	p := faults.NewPlan(0, faults.Rates{})
	p.Schedule(faults.DropResponse, 0)
	client := &http.Client{Transport: p.Transport(nil)}

	_, err := client.Post(ts.URL, "text/plain", strings.NewReader("x"))
	if err == nil {
		t.Fatal("dropped response returned no error")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected in chain", err)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times, want 1 (request delivered, response dropped)", handled)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[faults.Kind]string{
		faults.Crash:        "crash",
		faults.ComputeError: "compute-error",
		faults.DropResponse: "drop-response",
		faults.HTTPError:    "http-error",
		faults.Latency:      "latency",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
