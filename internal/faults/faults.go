// Package faults is a deterministic fault-injection plan for the
// Internet-computing stack.  IC-Scheduling exists because remote clients
// are temporally unpredictable (§1–§2): they slow down, vanish mid-task,
// return errors, and lose messages.  A Plan decides, reproducibly from a
// seed, when each of those faults fires, so the same chaos scenario can
// drive the discrete-event simulator (package icsim), the real HTTP wire
// protocol (via Transport), and a client's compute function — and be
// replayed exactly for debugging.
//
// Decisions are made per fault Kind against a per-kind decision counter:
// the nth decision of a kind is a pure function of (seed, kind, n), so a
// run injects the same fault multiset regardless of wall-clock timing.
// (Under concurrent clients the *interleaving* of decisions still varies —
// that is the point of chaos — but the decision sequence per kind does
// not.)  Faults can be injected by rate (Rates) or forced at explicit
// decision indices (Schedule), or both.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// Crash: the client vanishes mid-task without reporting (lease-expiry
	// recovery path).
	Crash Kind = iota
	// ComputeError: the task function fails (client hands the task back).
	ComputeError
	// DropResponse: the HTTP response is lost after the server processed
	// the request (retry + idempotency path).
	DropResponse
	// HTTPError: the request fails with a synthetic 500 before reaching
	// the handler (plain transient-retry path).
	HTTPError
	// Latency: a latency spike delays the request.
	Latency
	// ServerKill: the task server itself dies without warning (SIGKILL —
	// no drain, no final flush) and must restart from its write-ahead
	// journal.  Not rate-driven: kill moments come from KillPoints.
	ServerKill

	numKinds
)

// String names the kind in reports.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case ComputeError:
		return "compute-error"
	case DropResponse:
		return "drop-response"
	case HTTPError:
		return "http-error"
	case Latency:
		return "latency"
	case ServerKill:
		return "server-kill"
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// ErrInjected is the sentinel wrapped by every fault this package
// manufactures, so recovery code and tests can tell injected faults from
// organic ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// Rates gives each fault kind an independent injection probability in
// [0, 1]; zero disables the kind.
type Rates struct {
	Crash        float64
	ComputeError float64
	DropResponse float64
	HTTPError    float64
	Latency      float64
}

func (r Rates) of(k Kind) float64 {
	switch k {
	case Crash:
		return r.Crash
	case ComputeError:
		return r.ComputeError
	case DropResponse:
		return r.DropResponse
	case HTTPError:
		return r.HTTPError
	case Latency:
		return r.Latency
	}
	return 0
}

// Plan decides fault injections deterministically from a seed.  Safe for
// concurrent use.
type Plan struct {
	seed    int64
	rates   Rates
	latency time.Duration // Latency-fault delay; see WithLatency

	mu        sync.Mutex
	decisions [numKinds]uint64          // next decision index per kind
	injected  [numKinds]int             // how many decisions fired
	forced    [numKinds]map[uint64]bool // explicit schedule: fire at these indices
}

// NewPlan builds a plan injecting by rate; use Schedule to add explicit
// fault times on top (or alone, with zero Rates).
func NewPlan(seed int64, rates Rates) *Plan {
	return &Plan{seed: seed, rates: rates}
}

// Schedule forces the plan's nth decision of kind k (0-based) to inject,
// regardless of rate — the "explicit schedule" mode.
func (p *Plan) Schedule(k Kind, nth uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.forced[k] == nil {
		p.forced[k] = make(map[uint64]bool)
	}
	p.forced[k][nth] = true
}

// Decide consumes one decision of kind k and reports whether the fault
// fires.  The outcome of the nth decision is a pure function of the
// seed, k, n, the rate, and any Schedule entries.
func (p *Plan) Decide(k Kind) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.decisions[k]
	p.decisions[k]++
	fire := p.forced[k][n]
	if !fire {
		if rate := p.rates.of(k); rate > 0 {
			fire = unit(p.seed, k, n) < rate
		}
	}
	if fire {
		p.injected[k]++
	}
	return fire
}

// Injected reports how many faults of kind k have fired so far.
func (p *Plan) Injected(k Kind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[k]
}

// Decisions reports how many decisions of kind k have been consumed.
func (p *Plan) Decisions(k Kind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.decisions[k])
}

// Summary formats the injected-fault counts for reports.
func (p *Plan) Summary() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ""
	for k := Kind(0); k < numKinds; k++ {
		if p.decisions[k] == 0 {
			continue
		}
		if s != "" {
			s += ", "
		}
		s += fmt.Sprintf("%s %d/%d", k, p.injected[k], p.decisions[k])
	}
	if s == "" {
		return "no decisions"
	}
	return s
}

// KillPoints returns n distinct task-completion thresholds in
// [1, total-1], sorted ascending, at which a chaos harness kills the
// server mid-run.  Like Decide outcomes they are a pure function of the
// seed (drawn from the ServerKill decision stream), so two same-seed
// runs kill the server at the same progress points.  n is clamped to
// the number of distinct interior thresholds; total < 2 yields none.
func KillPoints(seed int64, n, total int) []int {
	if n <= 0 || total < 2 {
		return nil
	}
	if n > total-1 {
		n = total - 1
	}
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for i := uint64(0); len(out) < n; i++ {
		p := 1 + int(unit(seed, ServerKill, i)*float64(total-1))
		if p > total-1 {
			p = total - 1
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// unit hashes (seed, kind, n) to a uniform float64 in [0, 1) via
// splitmix64 — the per-decision randomness source.
func unit(seed int64, k Kind, n uint64) float64 {
	x := uint64(seed) ^ (uint64(k)+1)*0x9e3779b97f4a7c15 ^ n*0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
