// Gridsim: the Internet-computing scenario of §1–§2.  A server owns a
// wavefront computation and hands ELIGIBLE tasks to remote clients of
// varying speeds; we compare the IC-optimal schedule with the heuristics
// of the assessment studies ([15], [19]) on stalls, utilization, and the
// size of the allocatable pool.
package main

import (
	"fmt"
	"log"

	"icsched/internal/heur"
	"icsched/internal/icsim"
	"icsched/internal/mesh"
	"icsched/internal/sched"
	"icsched/internal/workflows"
)

func main() {
	levels := 20
	g := mesh.OutMesh(levels)
	optOrder := sched.Complete(g, mesh.OutMeshNonsinks(levels))
	policies := append(
		[]heur.Policy{heur.Static("IC-OPTIMAL", optOrder)},
		heur.Standard(99)...,
	)

	cfg := icsim.Config{
		Clients: 12,
		Speeds:  []float64{3, 3, 2, 2, 1, 1, 1, 1, 0.5, 0.5, 0.25, 0.25},
		Seed:    7,
	}
	fmt.Printf("out-mesh with %d levels (%d tasks), %d clients:\n\n",
		levels, g.NumNodes(), cfg.Clients)
	results, err := icsim.Compare(g, policies, cfg)
	if err != nil {
		log.Fatal(err)
	}
	printTable(results)

	// A bursty scenario: batched requests against a Montage workflow.
	fmt.Println("\nbatched requests (batch = 8) against a 24-image Montage workflow:")
	m := workflows.Montage(24)
	for _, p := range policies[1:4] {
		_, meanSat, err := icsim.BatchSatisfaction(m, p, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s mean satisfied %.2f of 8\n", p.Name(), meanSat)
	}
}

func printTable(results []icsim.Result) {
	fmt.Printf("%-18s %10s %8s %11s %12s %14s\n",
		"POLICY", "MAKESPAN", "STALLS", "STALL-TIME", "UTILIZATION", "AVG-ELIGIBLE")
	for _, r := range results {
		fmt.Printf("%-18s %10.2f %8d %11.2f %12.3f %14.2f\n",
			r.Policy, r.Makespan, r.Stalls, r.StallTime, r.Utilization, r.AvgEligibleAtRequest)
	}
}
