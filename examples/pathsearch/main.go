// Pathsearch: the paths-in-a-graph computation of §6.2.2 (Fig. 16).
// A 9-node graph's boolean adjacency matrix is raised to all logical
// powers A¹..A⁸ by an 8-input parallel-prefix dag, and an in-tree
// accumulates the powers into per-pair walk-length vectors.
package main

import (
	"fmt"
	"log"

	"icsched/internal/compute/graphpaths"
	"icsched/internal/compute/scan"
)

func main() {
	// The 9-node graph: a ring with two chords.
	a := scan.NewBoolMatrix(9)
	for i := 0; i < 9; i++ {
		a.Set(i, (i+1)%9, true)
	}
	a.Set(0, 4, true)
	a.Set(4, 7, true)

	vectors, err := graphpaths.Compute(a, 8, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("walk-length vectors β(i,j) = ⟨β¹ … β⁸⟩ (1 = walk exists):")
	for _, pair := range [][2]int{{0, 1}, {0, 4}, {0, 8}, {4, 0}, {3, 2}} {
		i, j := pair[0], pair[1]
		fmt.Printf("  β(%d,%d) = ", i, j)
		for _, ok := range vectors[i][j] {
			if ok {
				fmt.Print("1")
			} else {
				fmt.Print("0")
			}
		}
		fmt.Println()
	}

	// Shortest walk length per pair, read off the vectors.
	fmt.Println("\nshortest-walk matrix (0 = none within 8):")
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			shortest := 0
			for k, ok := range vectors[i][j] {
				if ok {
					shortest = k + 1
					break
				}
			}
			fmt.Printf("%2d", shortest)
		}
		fmt.Println()
	}
}
