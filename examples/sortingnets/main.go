// Sortingnets: the comparator sorting networks of §5.2.  Both of
// Batcher's constructions sort by executing comparator-butterfly dags;
// the bitonic network is a textbook iterated composition of B, while
// odd-even mergesort needs the pure-composition encoding to stay
// IC-optimally schedulable (see EXPERIMENTS.md E8).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"icsched/internal/compute/sortnet"
	"icsched/internal/sched"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	xs := make([]int, 16)
	for i := range xs {
		xs[i] = rng.Intn(100)
	}
	fmt.Println("input:  ", xs)

	bitonic, err := sortnet.Sort(xs, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bitonic:", bitonic)

	oddEven, err := sortnet.OddEvenSort(xs, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("odd-even:", oddEven)

	// Compare the two networks' sizes and schedules for 16 wires.
	k := 4
	bitonicComparators := len(sortnet.Stages(k)) * (1 << uint(k)) / 2
	oeComparators := 0
	for _, s := range sortnet.OddEvenStages(k) {
		oeComparators += len(s)
	}
	fmt.Printf("\ncomparators on %d wires: bitonic %d, odd-even %d\n",
		1<<uint(k), bitonicComparators, oeComparators)

	// The bitonic dag's eligibility profile under the IC-optimal
	// pair-consecutive schedule never dips below 2^k − 1.
	g := sortnet.Network(k)
	prof, err := sched.NonsinkProfile(g, sortnet.Nonsinks(k))
	if err != nil {
		log.Fatal(err)
	}
	minE := prof[0]
	for _, e := range prof {
		if e < minE {
			minE = e
		}
	}
	fmt.Printf("bitonic dag: %v, min eligibility under IC-optimal schedule: %d\n", g, minE)
}
