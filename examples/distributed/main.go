// Distributed: the paper's actual setting — an Internet-computing server
// hands ELIGIBLE tasks to remote clients over HTTP in IC-optimal order.
// This example runs the server and a small fleet of clients in one
// process (over the loopback interface) and executes a real wavefront
// computation: Pascal's triangle accumulated down an out-mesh.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/mesh"
	"icsched/internal/sched"
)

func main() {
	levels := 12
	g := mesh.OutMesh(levels)
	order := sched.Complete(g, mesh.OutMeshNonsinks(levels))
	srv := icserver.New(g, heur.Static("IC-OPTIMAL", order),
		icserver.WithLease(2*time.Second))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("server: %s — out-mesh with %d levels (%d tasks)\n", ts.URL, levels, g.NumNodes())

	var mu sync.Mutex
	vals := make([]int64, g.NumNodes())
	compute := func(v dag.NodeID, name string) error {
		mu.Lock()
		defer mu.Unlock()
		if g.IsSource(v) {
			vals[v] = 1
			return nil
		}
		var sum int64
		for _, p := range g.Parents(v) {
			sum += vals[p]
		}
		vals[v] = sum
		return nil
	}

	const clients = 5
	var wg sync.WaitGroup
	stats := make([]icserver.Stats, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &icserver.Client{BaseURL: ts.URL, Compute: compute}
			st, err := c.Run(context.Background())
			if err != nil {
				log.Printf("client %d: %v", i, err)
			}
			stats[i] = st
		}(i)
	}
	wg.Wait()

	final, err := icserver.FetchStatus(context.Background(), nil, ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d/%d tasks, %d stalls, %d lease reissues\n",
		final.Completed, final.Total, final.Stalls, final.Reissues)
	for i, st := range stats {
		fmt.Printf("client %d executed %3d tasks (%d idle polls)\n", i, st.Completed, st.IdlePolls)
	}

	// The bottom mesh row now holds binomial coefficients C(levels-1, j).
	fmt.Printf("bottom row (binomials C(%d, j)): ", levels-1)
	for j := 0; j < levels; j++ {
		fmt.Printf("%d ", vals[mesh.TriID(levels-1, j)])
	}
	fmt.Println()
}
