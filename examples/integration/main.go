// Integration: the adaptive numerical integration of §3.2.  The expansive
// phase grows an irregular out-tree of subintervals; the reductive phase
// accumulates areas through the mirror in-tree; the composed diamond dag
// executes on a parallel worker pool under its IC-optimal schedule.
package main

import (
	"fmt"
	"log"
	"math"

	"icsched/internal/compute/integrate"
)

func main() {
	// A function with a sharp feature: adaptive refinement concentrates
	// where the integrand varies, producing the paper's "possibly quite
	// irregular" out-tree.
	f := func(x float64) float64 { return math.Exp(-50*(x-0.3)*(x-0.3)) + 0.5*math.Sin(4*x) }

	for _, rule := range []struct {
		name string
		r    integrate.Rule
	}{
		{"Trapezoid", integrate.Trapezoid},
		{"Simpson  ", integrate.Simpson},
	} {
		res, err := integrate.Integrate(f, 0, 1, integrate.Options{
			Rule:    rule.r,
			Tol:     1e-8,
			Workers: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  ∫₀¹ f = %.10f   leaves=%4d  tree=%v  diamond=%v\n",
			rule.name, res.Value, res.Leaves, res.Tree, res.Diamond)
	}

	// Ground truth by a very fine fixed grid, for comparison.
	const steps = 2_000_000
	sum := 0.0
	h := 1.0 / steps
	for i := 0; i < steps; i++ {
		x := (float64(i) + 0.5) * h
		sum += f(x) * h
	}
	fmt.Printf("reference   ∫₀¹ f ≈ %.10f (midpoint rule, %d cells)\n", sum, steps)
}
