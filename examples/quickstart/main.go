// Quickstart: build a computation-dag, obtain an IC-optimal schedule via
// the composition machinery (Theorem 2.1), verify it against the exact
// oracle, and compare its eligibility profile with the FIFO heuristic.
package main

import (
	"fmt"
	"log"

	"icsched/internal/heur"
	"icsched/internal/opt"
	"icsched/internal/sched"
	"icsched/internal/trees"
)

func main() {
	// 1. Build a diamond dag (Fig. 2): a height-3 binary out-tree whose
	//    leaves feed its mirror in-tree — the shape of every
	//    divide-and-conquer computation.
	out := trees.CompleteOutTree(2, 3)
	comp, err := trees.Diamond(out)
	if err != nil {
		log.Fatal(err)
	}
	g, err := comp.Dag()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("diamond dag:", g)

	// 2. The Theorem 2.1 schedule: out-tree first, then the in-tree with
	//    each Λ's sources consecutive, then the sink.
	order, err := comp.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	linear, err := comp.VerifyLinear()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("▷-linear composition:", linear)

	// 3. Check IC-optimality with the exact oracle (the dag is small).
	lattice, err := opt.Analyze(g)
	if err != nil {
		log.Fatal(err)
	}
	optimal, step, err := lattice.IsOptimal(order)
	if err != nil {
		log.Fatal(err)
	}
	if optimal {
		fmt.Println("oracle verdict: IC-optimal at every step")
	} else {
		fmt.Printf("oracle verdict: shortfall at step %d\n", step)
	}

	// 4. Compare eligibility profiles with FIFO: the IC-optimal profile
	//    dominates pointwise.
	optProf, err := sched.Profile(g, order)
	if err != nil {
		log.Fatal(err)
	}
	fifoOrder, err := heur.RunOrder(g, heur.FIFO())
	if err != nil {
		log.Fatal(err)
	}
	fifoProf, err := sched.Profile(g, fifoOrder)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("step :  IC-optimal  FIFO")
	for t := range optProf {
		fmt.Printf("%4d :  %10d  %4d\n", t, optProf[t], fifoProf[t])
	}
}
