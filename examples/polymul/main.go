// Polymul: polynomial multiplication via the FFT (§5.2).  The transform's
// data dependencies are the butterfly network B_d, executed on the worker
// pool under the pair-consecutive IC-optimal schedule; convolution and the
// product coefficients follow.
package main

import (
	"fmt"
	"log"
	"strings"

	"icsched/internal/compute/fftconv"
)

func main() {
	// (1 + x)^4 via repeated squaring of (1 + x): binomial coefficients.
	p := []float64{1, 1}
	sq, err := fftconv.PolyMul(p, p, 4) // (1+x)²
	if err != nil {
		log.Fatal(err)
	}
	quart, err := fftconv.PolyMul(sq, sq, 4) // (1+x)⁴
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("(1+x)^4 =", poly(quart))

	// A general product, checked against the naive O(n²) convolution.
	a := []float64{3, 0, -2, 5}
	b := []float64{1, 4, 2}
	viaFFT, err := fftconv.PolyMul(a, b, 4)
	if err != nil {
		log.Fatal(err)
	}
	naive := fftconv.NaiveConvolve(a, b)
	fmt.Println("f(x)      =", poly(a))
	fmt.Println("g(x)      =", poly(b))
	fmt.Println("f·g (FFT) =", poly(viaFFT))
	fmt.Println("f·g (ref) =", poly(naive))
}

// poly renders a coefficient slice as a polynomial string.
func poly(cs []float64) string {
	var terms []string
	for i, c := range cs {
		if c > -1e-9 && c < 1e-9 {
			continue
		}
		switch i {
		case 0:
			terms = append(terms, fmt.Sprintf("%g", c))
		case 1:
			terms = append(terms, fmt.Sprintf("%gx", c))
		default:
			terms = append(terms, fmt.Sprintf("%gx^%d", c, i))
		}
	}
	if len(terms) == 0 {
		return "0"
	}
	return strings.Join(terms, " + ")
}
