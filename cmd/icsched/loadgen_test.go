package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"icsched/internal/dag"
	"icsched/internal/mesh"
	"icsched/internal/sched"
)

// TestLoadgenCellBitIdentical runs one benchmark cell end to end — a real
// HTTP server, a concurrent batched fleet — and relies on runCell's own
// bit-identity check against the exec.Run reference: any divergence or
// lost task is an error, not a number in a report.
func TestLoadgenCellBitIdentical(t *testing.T) {
	fam := loadgenFamily{"wavefront", 8, func(s int) (*dag.Dag, []dag.NodeID) {
		return mesh.Grid(s, s), mesh.GridDiagonalNonsinks(s, s)
	}}
	g, nonsinks := fam.build(fam.size)
	ref, err := loadgenReference(g, sched.Complete(g, nonsinks))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{0, 4} {
		res, err := runCell(fam, 4, batch, ref)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if res.Nodes != 64 || res.TasksPerSec <= 0 || res.AllocRequests <= 0 {
			t.Fatalf("batch %d: implausible cell %+v", batch, res)
		}
		wantProto := "single"
		if batch > 0 {
			wantProto = "batched"
		}
		if res.Protocol != wantProto || res.Batch != batch {
			t.Fatalf("batch %d: cell labeled %s/%d", batch, res.Protocol, res.Batch)
		}
		if batch > 0 && res.GrantsPerRequest <= 0 {
			t.Fatalf("batched cell observed no grants: %+v", res)
		}
		if batch == 0 && res.GrantsPerRequest != 0 {
			t.Fatalf("single cell claims batched grants: %+v", res)
		}
	}
}

// TestRunLoadgenMatrixAndFloor runs the full (smoke-sized) matrix once
// with an unreachable speedup floor: the floor must fail with the
// baseline numbers in the error, and the document must still carry every
// cell — the property CI depends on to upload the artifact from a failed
// guard run.
func TestRunLoadgenMatrixAndFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark matrix")
	}
	doc, err := runLoadgen(loadgenConfig{clients: 4, batches: []int{4}, smoke: true, minSpeedup: 1e9})
	if err == nil || !strings.Contains(err.Error(), "single-task baseline") {
		t.Fatalf("unreachable floor err = %v, want baseline failure", err)
	}
	if len(doc.Results) != 6 { // 3 families × {single, batched×1}
		t.Fatalf("failed guard run kept %d cells, want all 6", len(doc.Results))
	}
	for _, r := range doc.Results {
		if r.TasksPerSec <= 0 || r.Quarantined != 0 {
			t.Fatalf("implausible cell %+v", r)
		}
	}
}

// TestWriteLoadgenSchema checks the BENCH_throughput.json document round-
// trips: written file is valid JSON carrying the fields the CI schema
// validation greps for.
func TestWriteLoadgenSchema(t *testing.T) {
	doc := loadgenFile{Clients: 2, GoMaxP: 8, Smoke: true, Results: []loadgenResult{{
		Family: "wavefront", Size: 32, Nodes: 1024, Protocol: "batched", Batch: 16,
		WallMillis: 12.5, TasksPerSec: 81920, AllocRequests: 70, GrantsPerRequest: 14.6,
	}}}
	out := filepath.Join(t.TempDir(), "BENCH_throughput.json")
	if err := writeLoadgen(doc, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var got loadgenFile
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	if got.Clients != 2 || len(got.Results) != 1 || got.Results[0].TasksPerSec != 81920 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

// TestIntsFlag covers the -batches parser.
func TestIntsFlag(t *testing.T) {
	var f intsFlag
	if err := f.Set("4, 16,64"); err != nil {
		t.Fatal(err)
	}
	if len(f) != 3 || f[0] != 4 || f[1] != 16 || f[2] != 64 {
		t.Fatalf("parsed %v", f)
	}
	if f.String() != "4,16,64" {
		t.Fatalf("String() = %q", f.String())
	}
	if err := f.Set("4,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}
