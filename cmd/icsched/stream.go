package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icsched/internal/benchjson"
	"icsched/internal/butterfly"
	"icsched/internal/dag"
	"icsched/internal/jobs"
	"icsched/internal/mesh"
	"icsched/internal/prefix"
	"icsched/internal/sched"
)

// Stream mode: instead of one dag at a time, a Poisson stream of job
// submissions from several tenants flows through the multi-tenant job
// service (internal/jobs) while a shared fleet executes them — the
// production shape the ROADMAP aims at.  Mid-stream the service is
// killed and recovered from its journals to prove the crash story
// composes across jobs.  Every job is checked bit-identical against the
// serial exec.Run reference, and per-tenant latency percentiles plus a
// fairness (starvation) guard land in BENCH_stream.json.

// derivedSeed derives a per-worker jitter seed from (tenant, client) by
// FNV-1a, so fleets serving different tenants (or the same client count
// reused across concurrent jobs) never share jitter sequences — the
// bare per-process counter collided exactly there.  Always nonzero, so
// the client never falls back to that counter.
func derivedSeed(tenant string, client int) int64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime
	}
	h ^= 0xff // separator: ("ab",0x01...) never aliases ("a",0xb01...)
	h *= prime
	for i := 0; i < 8; i++ {
		h ^= uint64(client>>(8*i)) & 0xff
		h *= prime
	}
	s := int64(h >> 1) // non-negative
	if s == 0 {
		s = 1
	}
	return s
}

// streamConfig parameterizes one stream-mode run.
type streamConfig struct {
	clients       int
	tenants       int
	jobsPerTenant int
	rate          float64 // mean Poisson arrivals per second per tenant
	seed          int64
	maxSkew       float64 // fail if max/min completed-jobs ratio exceeds this; 0 disables
	smoke         bool
}

// streamTenantResult is one tenant's slice of BENCH_stream.json.
type streamTenantResult struct {
	Tenant    string `json:"tenant"`
	Weight    int    `json:"weight"`
	Submitted int    `json:"submitted"`
	Completed int    `json:"completed"`
	// Submit-to-finish latency percentiles over this tenant's jobs,
	// exact (sorted sample), surviving the mid-stream recovery because
	// the manifest keeps submit timestamps.
	LatencyP50Millis float64 `json:"latencyP50Millis"`
	LatencyP99Millis float64 `json:"latencyP99Millis"`
}

// streamFile is the BENCH_stream.json document.
type streamFile struct {
	Clients          int                  `json:"clients"`
	Tenants          int                  `json:"tenants"`
	JobsPerTenant    int                  `json:"jobsPerTenant"`
	Smoke            bool                 `json:"smoke"`
	Seed             int64                `json:"seed"`
	Jobs             int                  `json:"jobs"`
	Finished         int                  `json:"finished"`
	WallMillis       float64              `json:"wallMillis"`
	JobsPerSec       float64              `json:"jobsPerSec"`
	MidStreamRecover bool                 `json:"midStreamRecover"`
	Resyncs          int                  `json:"resyncs"`
	FairnessRatio    float64              `json:"fairnessRatio"`
	PerTenant        []streamTenantResult `json:"perTenant"`
}

// streamFamilies is the per-tenant submission mix (cycled in order) —
// the three paper families at stream-friendly sizes: many small jobs,
// not one big dag.
func streamFamilies(smoke bool) []loadgenFamily {
	wf := func(s int) (*dag.Dag, []dag.NodeID) { return mesh.Grid(s, s), mesh.GridDiagonalNonsinks(s, s) }
	fft := func(d int) (*dag.Dag, []dag.NodeID) { return butterfly.Network(d), butterfly.Nonsinks(d) }
	pfx := func(n int) (*dag.Dag, []dag.NodeID) { return prefix.Network(n), prefix.Nonsinks(n) }
	if smoke {
		return []loadgenFamily{{"wavefront", 6, wf}, {"fftconv", 3, fft}, {"prefix", 16, pfx}}
	}
	return []loadgenFamily{{"wavefront", 8, wf}, {"fftconv", 4, fft}, {"prefix", 32, pfx}}
}

// streamRegistry is the harness-side model: per-job dags and FNV value
// slices the fleet's Compute hashes into, plus cached serial references
// per (family, size).
type streamRegistry struct {
	mu     sync.Mutex
	graphs map[string]*dag.Dag
	vals   map[string][]uint64
	fam    map[string]loadgenFamily
	refs   map[string][]uint64
}

func newStreamRegistry() *streamRegistry {
	return &streamRegistry{
		graphs: map[string]*dag.Dag{},
		vals:   map[string][]uint64{},
		fam:    map[string]loadgenFamily{},
		refs:   map[string][]uint64{},
	}
}

func (r *streamRegistry) register(id string, fam loadgenFamily) {
	g, _ := fam.build(fam.size)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.graphs[id] = g
	r.vals[id] = make([]uint64, g.NumNodes())
	r.fam[id] = fam
}

// compute hashes one granted task.  A grant can race ahead of the
// submitter registering the job (the submit ack and the first grant
// travel on different connections), so unknown jobs are waited out
// briefly instead of failed.
func (r *streamRegistry) compute(job string, task dag.NodeID, _ string) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		g, ok := r.graphs[job]
		if ok {
			r.vals[job][task] = fnvNodeValue(g, task, r.vals[job])
			r.mu.Unlock()
			return nil
		}
		r.mu.Unlock()
		if time.Now().After(deadline) {
			return fmt.Errorf("grant for unregistered job %s", job)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// verify checks every registered job against its serial exec.Run
// reference, bit for bit.
func (r *streamRegistry) verify() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, fam := range r.fam {
		key := fmt.Sprintf("%s/%d", fam.name, fam.size)
		ref, ok := r.refs[key]
		if !ok {
			g, nonsinks := fam.build(fam.size)
			var err error
			if ref, err = loadgenReference(g, sched.Complete(g, nonsinks)); err != nil {
				return fmt.Errorf("stream: %s reference: %w", key, err)
			}
			r.refs[key] = ref
		}
		for v, got := range r.vals[id] {
			if got != ref[v] {
				return fmt.Errorf("stream: job %s (%s) node %d = %#x, want %#x (exec.Run reference)",
					id, key, v, got, ref[v])
			}
		}
	}
	return nil
}

// streamHandlerBox lets the harness swap the live server out from under
// the fleet mid-stream (the chaos handler-swap idiom): requests in the
// kill→recover window hit the dead incarnation's typed 503 and the
// clients' retry/backoff carries them to the successor.
type streamHandlerBox struct{ h http.Handler }

// submitJob POSTs one submission, retrying transient failures (and the
// typed 503 of the kill→recover window) with capped backoff.
func submitJob(ctx context.Context, httpc *http.Client, baseURL string, sp jobs.Spec) (jobs.JobStatus, error) {
	var st jobs.JobStatus
	payload, err := json.Marshal(sp)
	if err != nil {
		return st, err
	}
	wait := 5 * time.Millisecond
	deadline := time.Now().Add(10 * time.Second)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/jobs", bytes.NewReader(payload))
		if err != nil {
			return st, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := httpc.Do(req)
		if err == nil {
			code := resp.StatusCode
			dec := json.NewDecoder(resp.Body)
			if code == http.StatusAccepted {
				err := dec.Decode(&st)
				resp.Body.Close()
				return st, err
			}
			resp.Body.Close()
			if code < 500 && code != http.StatusTooManyRequests {
				return st, fmt.Errorf("POST /jobs -> %d", code)
			}
		} else if ctx.Err() != nil {
			return st, ctx.Err()
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("POST /jobs kept failing: %v", err)
		}
		time.Sleep(wait)
		if wait *= 2; wait > 200*time.Millisecond {
			wait = 200 * time.Millisecond
		}
	}
}

// percentile returns the exact q-th percentile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runStream executes the full streaming benchmark: tenants submit
// Poisson job streams, a shared fleet drains them through the recovered
// service, the service is killed and recovered once mid-stream, and
// every job is verified against the serial reference.
func runStream(cfg streamConfig) (streamFile, error) {
	doc := streamFile{
		Clients: cfg.clients, Tenants: cfg.tenants, JobsPerTenant: cfg.jobsPerTenant,
		Smoke: cfg.smoke, Seed: cfg.seed,
		Jobs: cfg.tenants * cfg.jobsPerTenant,
	}
	dir, err := os.MkdirTemp("", "icsched-stream")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(dir)
	jcfg := jobs.Config{Lease: 3 * time.Second, MaxQueued: 2*cfg.jobsPerTenant + 4}
	srv, err := jobs.Recover(dir, jcfg)
	if err != nil {
		return doc, fmt.Errorf("stream: %w", err)
	}
	var box atomic.Value
	box.Store(streamHandlerBox{srv.Handler()})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		box.Load().(streamHandlerBox).h.ServeHTTP(w, r)
	}))
	defer ts.Close()
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * (cfg.clients + cfg.tenants),
		MaxIdleConnsPerHost: 2 * (cfg.clients + cfg.tenants),
	}}
	defer httpc.CloseIdleConnections()

	reg := newStreamRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Shared fleet: workers outlive every job, stopped only when the
	// whole stream has drained.
	fleetCtx, stopFleet := context.WithCancel(ctx)
	defer stopFleet()
	var fleetWG sync.WaitGroup
	workerErrs := make([]error, cfg.clients)
	workerStats := make([]jobs.ClientStats, cfg.clients)
	for w := 0; w < cfg.clients; w++ {
		fleetWG.Add(1)
		go func(w int) {
			defer fleetWG.Done()
			cl := &jobs.Client{
				BaseURL: ts.URL, HTTP: httpc, Compute: reg.compute, Batch: 8,
				ID: fmt.Sprintf("stream-%d", w), Seed: derivedSeed("fleet", w),
				IdleWait: 200 * time.Microsecond, IdleWaitMax: 10 * time.Millisecond,
			}
			workerStats[w], workerErrs[w] = cl.Run(fleetCtx)
		}(w)
	}

	// Tenant submitters: Poisson arrivals (seeded exponential gaps), the
	// family mix cycled in order.
	mix := streamFamilies(cfg.smoke)
	var submitted atomic.Int64
	var subWG sync.WaitGroup
	subErrs := make([]error, cfg.tenants)
	for t := 0; t < cfg.tenants; t++ {
		subWG.Add(1)
		go func(t int) {
			defer subWG.Done()
			tenant := fmt.Sprintf("tenant-%d", t)
			rng := rand.New(rand.NewSource(cfg.seed + derivedSeed(tenant, 0)))
			for i := 0; i < cfg.jobsPerTenant; i++ {
				if cfg.rate > 0 {
					gap := time.Duration(rng.ExpFloat64() / cfg.rate * float64(time.Second))
					select {
					case <-time.After(gap):
					case <-ctx.Done():
						subErrs[t] = ctx.Err()
						return
					}
				}
				fam := mix[i%len(mix)]
				st, err := submitJob(ctx, httpc, ts.URL, jobs.Spec{
					Tenant: tenant, Weight: 1, Family: fam.name, Size: fam.size})
				if err != nil {
					subErrs[t] = fmt.Errorf("%s: %w", tenant, err)
					return
				}
				reg.register(st.Job, fam)
				submitted.Add(1)
			}
		}(t)
	}

	// Mid-stream crash: once half the jobs are in, kill the service and
	// recover a successor from the manifest + per-job journals, swapping
	// it under the live fleet.  Everyone in the window rides the typed
	// 503 retry path; reports against dead grants resync epochs.
	start := time.Now()
	half := int64(doc.Jobs / 2)
	for submitted.Load() < half {
		if err := ctx.Err(); err != nil {
			return doc, fmt.Errorf("stream: timed out before the mid-stream kill")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Kill()
	srv, err = jobs.Recover(dir, jcfg)
	if err != nil {
		return doc, fmt.Errorf("stream: mid-stream recover: %w", err)
	}
	box.Store(streamHandlerBox{srv.Handler()})
	doc.MidStreamRecover = true

	subWG.Wait()
	for _, err := range subErrs {
		if err != nil {
			return doc, fmt.Errorf("stream: submit: %w", err)
		}
	}

	// Drain: poll until every job reports finished (none may fail).
	for {
		if err := ctx.Err(); err != nil {
			return doc, fmt.Errorf("stream: drain timeout: %d of %d jobs finished", doc.Finished, doc.Jobs)
		}
		finished := 0
		for _, js := range srv.Jobs() {
			switch js.State {
			case jobs.StateFinished:
				finished++
			case jobs.StateFailed:
				return doc, fmt.Errorf("stream: job %s failed: %s", js.Job, js.Error)
			}
		}
		doc.Finished = finished
		if finished == doc.Jobs {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	wall := time.Since(start)
	stopFleet()
	fleetWG.Wait()
	for w, err := range workerErrs {
		if err != nil && !errors.Is(err, context.Canceled) && ctx.Err() == nil {
			return doc, fmt.Errorf("stream: worker %d: %w", w, err)
		}
		doc.Resyncs += workerStats[w].Resyncs
	}

	if err := reg.verify(); err != nil {
		return doc, err
	}

	// Per-tenant accounting: completed-jobs fairness plus exact latency
	// percentiles from the job registry (submit timestamps survive the
	// recovery via the manifest).
	latencies := map[string][]float64{}
	submittedBy := map[string]int{}
	for _, js := range srv.Jobs() {
		submittedBy[js.Tenant]++
		if js.State == jobs.StateFinished {
			latencies[js.Tenant] = append(latencies[js.Tenant], js.LatencyMillis)
		}
	}
	minDone, maxDone := -1, 0
	for _, tst := range srv.ServiceStatus().Tenants {
		lats := latencies[tst.Tenant]
		sort.Float64s(lats)
		doc.PerTenant = append(doc.PerTenant, streamTenantResult{
			Tenant: tst.Tenant, Weight: tst.Weight,
			Submitted: submittedBy[tst.Tenant], Completed: tst.CompletedJobs,
			LatencyP50Millis: percentile(lats, 0.50),
			LatencyP99Millis: percentile(lats, 0.99),
		})
		if minDone == -1 || tst.CompletedJobs < minDone {
			minDone = tst.CompletedJobs
		}
		if tst.CompletedJobs > maxDone {
			maxDone = tst.CompletedJobs
		}
	}
	if minDone > 0 {
		doc.FairnessRatio = float64(maxDone) / float64(minDone)
	} else {
		doc.FairnessRatio = float64(maxDone) // a starved tenant: ratio reads as +max
	}
	doc.WallMillis = float64(wall.Microseconds()) / 1000
	doc.JobsPerSec = float64(doc.Jobs) / wall.Seconds()
	if cfg.maxSkew > 0 && (minDone == 0 || doc.FairnessRatio > cfg.maxSkew) {
		return doc, fmt.Errorf("stream: completed-jobs skew %.2f (max %d / min %d) exceeds %.1f",
			doc.FairnessRatio, maxDone, minDone, cfg.maxSkew)
	}
	return doc, nil
}

// writeStream writes BENCH_stream.json plus a stdout summary table.
func writeStream(doc streamFile, out string) error {
	if err := benchjson.Write(out, doc, "tenants", "jobs", "jobsPerSec",
		"fairnessRatio", "perTenant"); err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %9s %9s %12s %12s\n",
		"TENANT", "JOBS", "DONE", "WEIGHT", "LAT-P50-MS", "LAT-P99-MS")
	for _, tr := range doc.PerTenant {
		fmt.Printf("%-12s %6d %9d %9d %12.1f %12.1f\n",
			tr.Tenant, tr.Submitted, tr.Completed, tr.Weight,
			tr.LatencyP50Millis, tr.LatencyP99Millis)
	}
	fmt.Printf("stream: %d jobs, %.1f jobs/s, fairness ratio %.2f, %d resyncs, recover=%v\n",
		doc.Jobs, doc.JobsPerSec, doc.FairnessRatio, doc.Resyncs, doc.MidStreamRecover)
	if out != "-" {
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
