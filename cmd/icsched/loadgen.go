package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"icsched/internal/benchjson"
	"icsched/internal/butterfly"
	"icsched/internal/dag"
	"icsched/internal/exec"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/mesh"
	"icsched/internal/prefix"
	"icsched/internal/sched"
)

// loadgenResult is one (family, protocol, batch) cell of the throughput
// benchmark: a full fleet execution of the dag through the real HTTP
// server, with the allocation-path latency read back from the server's
// own histograms.
type loadgenResult struct {
	Family   string `json:"family"`
	Size     int    `json:"size"`
	Nodes    int    `json:"nodes"`
	Protocol string `json:"protocol"` // "single" or "batched"
	// Batch is the client-side grant cap (0 under the single protocol).
	Batch       int     `json:"batch"`
	WallMillis  float64 `json:"wallMillis"`
	TasksPerSec float64 `json:"tasksPerSec"`
	// AllocRequests counts /task + /tasks requests; GrantsPerRequest is
	// the mean tasks granted per batched request (0 when single).
	AllocRequests    int     `json:"allocRequests"`
	GrantsPerRequest float64 `json:"grantsPerRequest"`
	// Allocate-endpoint handler latency and scheduler lock-hold time,
	// from the server's histograms (linear bucket interpolation).
	AllocP50Micros    float64 `json:"allocP50Micros"`
	AllocP99Micros    float64 `json:"allocP99Micros"`
	LockHoldP50Micros float64 `json:"lockHoldP50Micros"`
	LockHoldP99Micros float64 `json:"lockHoldP99Micros"`
	Reissues          int     `json:"reissues"`
	Quarantined       int     `json:"quarantined"`
	// Resyncs counts stale-epoch rejections the fleet recovered from
	// mid-run (409 → re-read epoch → re-send); nonzero only when the
	// server restarted from its journal during the cell.
	Resyncs int `json:"resyncs"`
}

// loadgenFile is the BENCH_throughput.json document.
type loadgenFile struct {
	Clients int             `json:"clients"`
	GoMaxP  int             `json:"gomaxprocs"`
	Smoke   bool            `json:"smoke"`
	Results []loadgenResult `json:"results"`
}

// loadgenConfig parameterizes one harness run (split out so tests drive
// runLoadgen directly).
type loadgenConfig struct {
	clients    int
	batches    []int
	smoke      bool
	minSpeedup float64 // wavefront batched/single floor; 0 disables
}

// loadgenFamily is one dag family of the benchmark, sized for load
// generation rather than figure drawing.
type loadgenFamily struct {
	name  string
	size  int
	build func(size int) (*dag.Dag, []dag.NodeID)
}

// loadgenFamilies returns the paper's three computation families at
// benchmark sizes.  The 32×32 wavefront is kept at full size even in
// smoke runs: it is the cell the CI regression guard measures.
func loadgenFamilies(smoke bool) []loadgenFamily {
	fftSize, prefixSize := 6, 64
	if smoke {
		fftSize, prefixSize = 5, 32
	}
	return []loadgenFamily{
		{"wavefront", 32, func(s int) (*dag.Dag, []dag.NodeID) {
			return mesh.Grid(s, s), mesh.GridDiagonalNonsinks(s, s)
		}},
		{"fftconv", fftSize, func(s int) (*dag.Dag, []dag.NodeID) {
			return butterfly.Network(s), butterfly.Nonsinks(s)
		}},
		{"prefix", prefixSize, func(s int) (*dag.Dag, []dag.NodeID) {
			return prefix.Network(s), prefix.Nonsinks(s)
		}},
	}
}

// fnvNodeValue hashes v's ID together with its parents' values (FNV-1a),
// the same order-independent ground truth internal/difftest uses: any
// execution respecting the dependencies computes identical values.
func fnvNodeValue(g *dag.Dag, v dag.NodeID, vals []uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(v))
	for _, p := range g.Parents(v) {
		mix(vals[p])
	}
	return h
}

// loadgenReference computes the ground-truth values with the serial
// in-process executor (exec.Run, one worker) — the fleet results must
// match it bit for bit.
func loadgenReference(g *dag.Dag, order []dag.NodeID) ([]uint64, error) {
	rank, err := exec.RankFromOrder(g, order)
	if err != nil {
		return nil, err
	}
	vals := make([]uint64, g.NumNodes())
	if _, err := exec.Run(g, rank, 1, func(v dag.NodeID) error {
		vals[v] = fnvNodeValue(g, v, vals)
		return nil
	}); err != nil {
		return nil, err
	}
	return vals, nil
}

// runCell executes one dag through the HTTP server with a fleet of
// `clients` concurrent clients (batched when batch > 0) and measures
// throughput plus the server-side allocation latency distribution.
func runCell(fam loadgenFamily, clients, batch int, ref []uint64) (loadgenResult, error) {
	g, nonsinks := fam.build(fam.size)
	order := sched.Complete(g, nonsinks)
	srv := icserver.New(g, heur.Static("IC-OPTIMAL", order),
		icserver.WithLease(time.Minute))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var mu sync.Mutex
	vals := make([]uint64, g.NumNodes())
	compute := func(v dag.NodeID, _ string) error {
		mu.Lock()
		defer mu.Unlock()
		vals[v] = fnvNodeValue(g, v, vals)
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// One pooled transport for the fleet: http.DefaultClient keeps only
	// two idle connections per host, so 16 hammering clients would spend
	// the benchmark re-dialing TCP instead of measuring the protocol.
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * clients,
		MaxIdleConnsPerHost: 2 * clients,
	}}
	defer httpc.CloseIdleConnections()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	stats := make([]icserver.Stats, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Aggressive idle polling (both protocols): the benchmark
			// measures protocol cost per task, and the default 250ms idle
			// backoff ceiling would swamp it with sleep time.
			cl := &icserver.Client{
				BaseURL:     ts.URL,
				HTTP:        httpc,
				Compute:     compute,
				Batch:       batch,
				IdleWait:    100 * time.Microsecond,
				IdleWaitMax: time.Millisecond,
				ID:          fmt.Sprintf("loadgen-%d", c),
				// Seeds derive from (cell family, client): the bare c+1
				// collided across cells, synchronizing their backoff.
				Seed: derivedSeed(fam.name, c),
			}
			stats[c], errs[c] = cl.Run(ctx)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for c, err := range errs {
		if err != nil {
			return loadgenResult{}, fmt.Errorf("%s: client %d: %w", fam.name, c, err)
		}
	}
	if !srv.Finished() {
		return loadgenResult{}, fmt.Errorf("%s: server not finished after fleet drained", fam.name)
	}
	st := srv.Status()
	if st.Completed != g.NumNodes() {
		return loadgenResult{}, fmt.Errorf("%s: completed %d of %d tasks", fam.name, st.Completed, g.NumNodes())
	}
	for v := range ref {
		if vals[v] != ref[v] {
			return loadgenResult{}, fmt.Errorf("%s: node %d computed %#x, want %#x (exec.Run reference)",
				fam.name, v, vals[v], ref[v])
		}
	}

	// Read the allocate-path distributions back off the server's own
	// registry; the handles are shared with the handlers, so the help
	// strings and buckets here are ignored.
	reg := srv.Metrics()
	allocPath := "/task"
	if batch > 0 {
		allocPath = "/tasks"
	}
	allocLat := reg.Histogram(fmt.Sprintf("icserver_request_seconds{path=%q}", allocPath), "", nil)
	lockHold := reg.Histogram("icserver_lock_hold_seconds", "", nil)
	requests := int(reg.Counter(fmt.Sprintf("icserver_http_requests_total{path=%q}", allocPath), "").Value())
	grants := 0.0
	if batch > 0 {
		grantHist := reg.Histogram("icserver_grants_per_request", "", nil)
		if n := grantHist.Count(); n > 0 {
			grants = grantHist.Sum() / float64(n)
		}
	}
	protocol := "single"
	if batch > 0 {
		protocol = "batched"
	}
	resyncs := 0
	for _, cst := range stats {
		resyncs += cst.Resyncs
	}
	return loadgenResult{
		Family:           fam.name,
		Size:             fam.size,
		Nodes:            g.NumNodes(),
		Protocol:         protocol,
		Batch:            batch,
		WallMillis:       float64(wall.Microseconds()) / 1000,
		TasksPerSec:      float64(g.NumNodes()) / wall.Seconds(),
		AllocRequests:    requests,
		GrantsPerRequest: grants,
		// QuantileOr: an empty histogram yields the NaN sentinel, which
		// does not marshal to JSON — report 0 instead.
		AllocP50Micros:    1e6 * allocLat.QuantileOr(0.50, 0),
		AllocP99Micros:    1e6 * allocLat.QuantileOr(0.99, 0),
		LockHoldP50Micros: 1e6 * lockHold.QuantileOr(0.50, 0),
		LockHoldP99Micros: 1e6 * lockHold.QuantileOr(0.99, 0),
		Reissues:          st.Reissues,
		Quarantined:       st.Quarantined,
		Resyncs:           resyncs,
	}, nil
}

// runLoadgen executes the full benchmark matrix — every family under the
// single-task protocol and under each batched grant cap — and enforces
// the regression floor: batched throughput on the wavefront must beat
// the single-task baseline recorded in the same run by minSpeedup.
func runLoadgen(cfg loadgenConfig) (loadgenFile, error) {
	doc := loadgenFile{Clients: cfg.clients, GoMaxP: runtime.GOMAXPROCS(0), Smoke: cfg.smoke}
	var wavefrontSingle, wavefrontBatchedBest float64
	for _, fam := range loadgenFamilies(cfg.smoke) {
		g, nonsinks := fam.build(fam.size)
		ref, err := loadgenReference(g, sched.Complete(g, nonsinks))
		if err != nil {
			return doc, fmt.Errorf("loadgen: %s reference: %w", fam.name, err)
		}
		for _, batch := range append([]int{0}, cfg.batches...) {
			res, err := runCell(fam, cfg.clients, batch, ref)
			if err != nil {
				return doc, fmt.Errorf("loadgen: %w", err)
			}
			doc.Results = append(doc.Results, res)
			if fam.name == "wavefront" {
				if batch == 0 {
					wavefrontSingle = res.TasksPerSec
				} else if res.TasksPerSec > wavefrontBatchedBest {
					wavefrontBatchedBest = res.TasksPerSec
				}
			}
		}
	}
	if cfg.minSpeedup > 0 && wavefrontBatchedBest < cfg.minSpeedup*wavefrontSingle {
		return doc, fmt.Errorf("loadgen: wavefront batched throughput %.0f tasks/s < %.1f× single-task baseline %.0f tasks/s",
			wavefrontBatchedBest, cfg.minSpeedup, wavefrontSingle)
	}
	return doc, nil
}

// cmdLoadgen is the throughput benchmark harness: N concurrent clients ×
// {single, batched×caps} × the paper's dag families (wavefront, fftconv,
// prefix) through the real HTTP server, every cell checked bit-identical
// against the serial exec.Run reference, written to BENCH_throughput.json.
// -minspeedup turns the run into a CI regression guard.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	out := fs.String("out", "", "output JSON file (- for stdout; default BENCH_throughput.json, stream mode BENCH_stream.json)")
	clients := fs.Int("clients", 16, "concurrent clients per cell (stream mode: fleet size)")
	smoke := fs.Bool("smoke", false, "CI smoke sizes (one batched cap, smaller fftconv/prefix)")
	minSpeedup := fs.Float64("minspeedup", 0, "fail unless wavefront batched ≥ this × single-task tasks/sec (0 = off)")
	stream := fs.Bool("stream", false, "Poisson job-arrival stream mode through the multi-tenant job service")
	relaxedMode := fs.Bool("relaxed", false, "relaxation sweep mode: in-process quality/throughput frontier of the lock-free k-relaxed core vs the locked path, written to BENCH_relaxed.json")
	zipfMode := fs.Bool("zipf", false, "schedule-cache mode: Zipf-distributed raw-payload job mix through the cached job service, written to BENCH_cache.json")
	shardMode := fs.Bool("shards", false, "sharded-coordinator mode: journaled single server vs K-shard coordinator on one large wavefront, written to BENCH_shard.json")
	zipfJobs := fs.Int("zipfjobs", 0, "zipf mode: total jobs (default 240; smoke 80)")
	minHitRate := fs.Float64("minhitrate", 0, "zipf mode: fail if cache hit rate below this (0 = off)")
	minAnalysisSpeedup := fs.Float64("minanalysisspeedup", 0, "zipf mode: fail if warm/cold analysis speedup below this (0 = off)")
	maxReplayP99 := fs.Float64("maxreplayp99ratio", 0, "zipf mode: fail if replay grant p99 exceeds this × static grant p99 (0 = off)")
	tenants := fs.Int("tenants", 4, "stream mode: submitting tenants")
	jobsPer := fs.Int("jobs", 12, "stream mode: jobs per tenant")
	rate := fs.Float64("rate", 25, "stream mode: mean Poisson arrivals/sec per tenant (0 = back-to-back)")
	seed := fs.Int64("seed", 1, "stream mode: arrival-process seed")
	maxSkew := fs.Float64("maxskew", 2, "stream mode: fail if max/min completed-jobs ratio exceeds this (0 = off)")
	var batches intsFlag
	fs.Var(&batches, "batches", "comma-separated batched grant caps (default 4,16,64; smoke 16)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 {
		return fmt.Errorf("loadgen: %d clients", *clients)
	}
	if *stream {
		if *tenants < 1 || *jobsPer < 1 {
			return fmt.Errorf("loadgen: stream needs ≥1 tenant and ≥1 job per tenant")
		}
		if *out == "" {
			*out = "BENCH_stream.json"
		}
		doc, err := runStream(streamConfig{
			clients: *clients, tenants: *tenants, jobsPerTenant: *jobsPer,
			rate: *rate, seed: *seed, maxSkew: *maxSkew, smoke: *smoke,
		})
		// Write whatever was measured even on failure, for CI diagnosis.
		if werr := writeStream(doc, *out); werr != nil && err == nil {
			err = werr
		}
		return err
	}
	if *shardMode {
		if *out == "" {
			*out = "BENCH_shard.json"
		}
		doc, err := runShardBench(shardBenchConfig{
			clients:    *clients,
			smoke:      *smoke,
			minSpeedup: *minSpeedup,
		})
		// Write whatever was measured even when the speedup floor failed,
		// so CI can upload the artifact for diagnosis.
		if len(doc.Results) > 0 {
			if werr := writeShard(doc, *out); werr != nil && err == nil {
				err = werr
			}
		}
		return err
	}
	if *zipfMode {
		if *out == "" {
			*out = "BENCH_cache.json"
		}
		n := *zipfJobs
		if n == 0 {
			n = 240
			if *smoke {
				n = 80
			}
		}
		doc, err := runZipf(zipfConfig{
			jobs: n, workers: *clients, seed: *seed, smoke: *smoke,
			minHitRate:        *minHitRate,
			minAnalysisFactor: *minAnalysisSpeedup,
			maxReplayP99Ratio: *maxReplayP99,
		})
		// Write whatever was measured even on a guard failure, for CI
		// diagnosis.
		if werr := writeZipf(doc, *out); werr != nil && err == nil {
			err = werr
		}
		return err
	}
	if *relaxedMode {
		if *out == "" {
			*out = "BENCH_relaxed.json"
		}
		sweep := relaxedSweepConfig{
			clients:    []int{4, *clients},
			ks:         []int{0, 1, 2, 4, 8, 16},
			batch:      8,
			smoke:      *smoke,
			minSpeedup: *minSpeedup,
		}
		if *clients <= 4 {
			sweep.clients = []int{*clients}
		}
		if *smoke {
			sweep.clients = []int{*clients}
			sweep.ks = []int{0, 1, 4, 16}
		}
		doc, err := runRelaxedSweep(sweep)
		// Write whatever was measured even when the frontier guard failed,
		// so CI can upload the artifact for diagnosis.
		if len(doc.Results) > 0 {
			if werr := writeRelaxed(doc, *out); werr != nil && err == nil {
				err = werr
			}
		}
		return err
	}
	if *out == "" {
		*out = "BENCH_throughput.json"
	}
	if len(batches) == 0 {
		batches = intsFlag{4, 16, 64}
		if *smoke {
			batches = intsFlag{16}
		}
	}
	for _, b := range batches {
		if b < 1 {
			return fmt.Errorf("loadgen: batch cap %d < 1", b)
		}
	}

	doc, err := runLoadgen(loadgenConfig{
		clients:    *clients,
		batches:    batches,
		smoke:      *smoke,
		minSpeedup: *minSpeedup,
	})
	// Write whatever was measured even when the speedup floor failed, so
	// CI can upload the artifact for diagnosis.
	if len(doc.Results) > 0 {
		if werr := writeLoadgen(doc, *out); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

func writeLoadgen(doc loadgenFile, out string) error {
	if err := benchjson.Write(out, doc, "clients", "gomaxprocs", "results"); err != nil {
		return err
	}
	fmt.Printf("%-10s %6s %-8s %6s %10s %12s %10s %10s %12s\n",
		"FAMILY", "NODES", "PROTO", "BATCH", "WALL-MS", "TASKS/SEC", "REQUESTS", "GRANTS/RQ", "LOCK-P99-US")
	for _, r := range doc.Results {
		fmt.Printf("%-10s %6d %-8s %6d %10.1f %12.0f %10d %10.2f %12.2f\n",
			r.Family, r.Nodes, r.Protocol, r.Batch, r.WallMillis, r.TasksPerSec,
			r.AllocRequests, r.GrantsPerRequest, r.LockHoldP99Micros)
	}
	if out != "-" {
		fmt.Printf("wrote %s (%d cells, %d clients)\n", out, len(doc.Results), doc.Clients)
	}
	return nil
}

func writeRelaxed(doc relaxedFile, out string) error {
	if err := benchjson.Write(out, doc, "gomaxprocs", "note", "speedup",
		"lockedTasksPerSec", "relaxedTasksPerSec", "results"); err != nil {
		return err
	}
	fmt.Printf("%-10s %6s %8s %8s %6s %10s %12s %10s %10s\n",
		"FAMILY", "NODES", "CLIENTS", "RELAXED", "BATCH", "WALL-MS", "TASKS/SEC", "WSR", "GAP")
	for _, r := range doc.Results {
		fmt.Printf("%-10s %6d %8d %8d %6d %10.1f %12.0f %10.4f %10.4f\n",
			r.Family, r.Nodes, r.Clients, r.Relaxed, r.Batch, r.WallMillis,
			r.TasksPerSec, r.WorstStepRatio, r.QualityGap)
	}
	fmt.Printf("k=1 bit-identical: %v; frontier at max clients: relaxed %.0f vs locked %.0f tasks/s (%.2fx)\n",
		doc.K1BitIdentical, doc.RelaxedTasksPerSec, doc.LockedTasksPerSec, doc.Speedup)
	if out != "-" {
		fmt.Printf("wrote %s (%d cells)\n", out, len(doc.Results))
	}
	return nil
}

// intsFlag parses a comma-separated int list.
type intsFlag []int

func (f *intsFlag) String() string {
	parts := make([]string, len(*f))
	for i, v := range *f {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func (f *intsFlag) Set(s string) error {
	*f = nil
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad batch size %q", part)
		}
		*f = append(*f, v)
	}
	return nil
}
