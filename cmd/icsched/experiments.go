package main

import (
	"fmt"
	"math/big"

	"icsched/internal/batch"
	"icsched/internal/blocks"
	"icsched/internal/coarsen"
	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/icsim"
	"icsched/internal/matmuldag"
	"icsched/internal/mesh"
	"icsched/internal/opt"
	"icsched/internal/prefix"
	"icsched/internal/prio"
	"icsched/internal/sched"
	"icsched/internal/workflows"
)

// cmdExperiments regenerates every table recorded in EXPERIMENTS.md.
func cmdExperiments() error {
	if err := expE1PriorityFacts(); err != nil {
		return err
	}
	if err := expE2OracleVerification(); err != nil {
		return err
	}
	if err := expE3Profiles(); err != nil {
		return err
	}
	if err := expE4Simulation(); err != nil {
		return err
	}
	if err := expE5Batch(); err != nil {
		return err
	}
	if err := expE6Coarsening(); err != nil {
		return err
	}
	if err := expE7MatmulErratum(); err != nil {
		return err
	}
	if err := expE9Batch(); err != nil {
		return err
	}
	if err := expE10Granularity(); err != nil {
		return err
	}
	return expE11Demandingness()
}

// expE1PriorityFacts checks every ▷ claim the paper states (E1).
func expE1PriorityFacts() error {
	fmt.Println("== E1: priority-relation (▷) facts of the paper ==")
	fmt.Printf("%-28s %-10s %-8s\n", "CLAIM", "EXPECTED", "MEASURED")
	type claim struct {
		name   string
		g1, g2 *dag.Dag
		want   bool
	}
	v, l := blocks.Vee(), blocks.Lambda()
	v3 := blocks.VeeD(3)
	c4 := blocks.Cycle(4)
	claims := []claim{
		{"V ▷ V", v, v, true},
		{"V ▷ Λ", v, l, true},
		{"Λ ▷ Λ", l, l, true},
		{"Λ ▷ V", l, v, false},
		{"W2 ▷ W4", blocks.W(2), blocks.W(4), true},
		{"W4 ▷ W2", blocks.W(4), blocks.W(2), false},
		{"N3 ▷ N5", blocks.N(3), blocks.N(5), true},
		{"N5 ▷ N3", blocks.N(5), blocks.N(3), true},
		{"N4 ▷ Λ", blocks.N(4), l, true},
		{"B ▷ B", blocks.Butterfly(), blocks.Butterfly(), true},
		{"C4 ▷ C4", c4, c4, true},
		{"C4 ▷ Λ", c4, l, true},
		{"V3 ▷ V3", v3, v3, true},
		{"V3 ▷ Λ", v3, l, true},
	}
	for _, c := range claims {
		got, err := prio.Holds(c.g1, blocks.SourcesLeftToRight(c.g1), c.g2, blocks.SourcesLeftToRight(c.g2))
		if err != nil {
			return err
		}
		status := map[bool]string{true: "holds", false: "fails"}
		mark := "OK"
		if got != c.want {
			mark = "MISMATCH"
		}
		fmt.Printf("%-28s %-10s %-8s %s\n", c.name, status[c.want], status[got], mark)
	}
	fmt.Println()
	return nil
}

// expE2OracleVerification checks each family's schedule against the exact
// oracle at oracle-sized instances (E2).
func expE2OracleVerification() error {
	fmt.Println("== E2: exact-oracle verification of the families' schedules ==")
	fmt.Printf("%-10s %5s %6s %8s %10s\n", "FAMILY", "SIZE", "NODES", "IDEALS", "VERDICT")
	sizes := map[string]int{
		"vee": 2, "lambda": 2, "w": 4, "n": 4, "cycle": 4,
		"outtree": 2, "intree": 2, "diamond": 2,
		"outmesh": 5, "inmesh": 5, "grid": 4,
		"butterfly": 2, "prefix": 5, "dlt": 4, "dlt2": 8, "matmul": 0,
	}
	for _, f := range families {
		size, ok := sizes[f.name]
		if !ok {
			continue
		}
		g, nonsinks, err := f.build(size)
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		lat, err := opt.Analyze(g)
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		optimal, step, err := lat.IsOptimal(sched.Complete(g, nonsinks))
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		verdict := "IC-OPTIMAL"
		if !optimal {
			verdict = fmt.Sprintf("FAILS@%d", step)
		}
		fmt.Printf("%-10s %5d %6d %8d %10s\n", f.name, size, g.NumNodes(), lat.NumIdeals(), verdict)
	}
	fmt.Println()
	return nil
}

// expE3Profiles compares mean eligibility across schedulers (E3).
func expE3Profiles() error {
	fmt.Println("== E3: mean ELIGIBLE-set size, IC-optimal vs heuristics ==")
	fmt.Printf("%-10s %6s", "FAMILY", "NODES")
	names := []string{"IC-OPT"}
	for _, p := range heur.Standard(1) {
		names = append(names, p.Name())
	}
	for _, n := range names {
		fmt.Printf(" %8.8s", n)
	}
	fmt.Println()
	bigSizes := map[string]int{
		"outmesh": 14, "inmesh": 14, "grid": 10, "butterfly": 4,
		"prefix": 16, "dlt": 16, "diamond": 5, "forkjoin": 6, "montage": 12,
	}
	for _, f := range families {
		size, ok := bigSizes[f.name]
		if !ok {
			continue
		}
		g, nonsinks, err := f.build(size)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %6d", f.name, g.NumNodes())
		prof, err := sched.Profile(g, sched.Complete(g, nonsinks))
		if err != nil {
			return err
		}
		fmt.Printf(" %8.2f", mean(prof))
		for _, p := range heur.Standard(1) {
			order, err := heur.RunOrder(g, p)
			if err != nil {
				return err
			}
			hp, err := sched.Profile(g, order)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.2f", mean(hp))
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

// expE4Simulation runs the client/server simulator (E4).
func expE4Simulation() error {
	fmt.Println("== E4: IC simulation (8 clients, heterogeneous speeds) ==")
	workloads := map[string]*dag.Dag{
		"outmesh14": mesh.OutMesh(14),
		"montage16": workflows.Montage(16),
		"forkjoin":  workflows.ForkJoin(6, 8),
	}
	optOrders := map[string][]dag.NodeID{
		"outmesh14": sched.Complete(mesh.OutMesh(14), mesh.OutMeshNonsinks(14)),
	}
	cfg := icsim.Config{
		Clients: 8,
		Speeds:  []float64{2, 2, 1, 1, 1, 1, 0.5, 0.5},
		Seed:    42,
	}
	for name, g := range workloads {
		fmt.Printf("-- workload %s (%d nodes) --\n", name, g.NumNodes())
		policies := heur.Standard(17)
		if order, ok := optOrders[name]; ok {
			policies = append([]heur.Policy{heur.Static("IC-OPTIMAL", order)}, policies...)
		}
		results, err := icsim.Compare(g, policies, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %10s %8s %12s %14s\n", "POLICY", "MAKESPAN", "STALLS", "UTILIZATION", "AVG-ELIGIBLE")
		for _, r := range results {
			fmt.Printf("%-18s %10.2f %8d %12.3f %14.2f\n",
				r.Policy, r.Makespan, r.Stalls, r.Utilization, r.AvgEligibleAtRequest)
		}
	}
	// Statistical pass over 10 seeds on the mesh workload.
	fmt.Println("-- outmesh14, 10 trials per policy (makespan mean ± stddev) --")
	g := mesh.OutMesh(14)
	policies := append([]heur.Policy{
		heur.Static("IC-OPTIMAL", sched.Complete(g, mesh.OutMeshNonsinks(14))),
	}, heur.Standard(17)...)
	for _, p := range policies {
		mr, err := icsim.RunMany(g, p, cfg, 10)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %8.2f ± %5.2f   stalls %6.1f ± %5.1f\n",
			mr.Policy, mr.Makespan.Mean, mr.Makespan.StdDev, mr.Stalls.Mean, mr.Stalls.StdDev)
	}
	fmt.Println()
	return nil
}

// expE5Batch measures batched-request satisfaction (§2.2 scenario 2, E5).
func expE5Batch() error {
	fmt.Println("== E5: batched-request satisfaction on the out-mesh (batch = 6) ==")
	g := mesh.OutMesh(12)
	optOrder := sched.Complete(g, mesh.OutMeshNonsinks(12))
	policies := append([]heur.Policy{heur.Static("IC-OPTIMAL", optOrder)}, heur.Standard(5)...)
	fmt.Printf("%-18s %18s\n", "POLICY", "MEAN-SATISFIED")
	for _, p := range policies {
		_, meanSat, err := icsim.BatchSatisfaction(g, p, 6)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %18.3f\n", p.Name(), meanSat)
	}
	fmt.Println()
	return nil
}

// expE6Coarsening measures the §4 granularity trade-off (E6).
func expE6Coarsening() error {
	fmt.Println("== E6: mesh coarsening — work grows ~f², communication ~f ==")
	levels := 24
	g := mesh.OutMesh(levels)
	fmt.Printf("%-6s %8s %10s %12s %14s\n", "f", "CLUSTERS", "MAX-WORK", "CUT-ARCS", "CUT/CLUSTER")
	for _, f := range []int{1, 2, 3, 4, 6, 8} {
		part, k, _ := coarsen.MeshBlocks(levels, f)
		_, stats, err := coarsen.Quotient(g, part, k)
		if err != nil {
			return err
		}
		maxWork := 0
		for _, w := range stats.Work {
			if w > maxWork {
				maxWork = w
			}
		}
		fmt.Printf("%-6d %8d %10d %12d %14.2f\n",
			f, k, maxWork, stats.CutArcs, float64(stats.CutArcs)/float64(k))
	}
	fmt.Println()
	return nil
}

// expE7MatmulErratum re-derives the §7 product-order finding (E7).
func expE7MatmulErratum() error {
	fmt.Println("== E7: §7 matrix-multiply schedule — Theorem 2.1 order vs literal prose order ==")
	c, err := matmuldag.New()
	if err != nil {
		return err
	}
	g, err := c.Dag()
	if err != nil {
		return err
	}
	lat, err := opt.Analyze(g)
	if err != nil {
		return err
	}
	check := func(label string, products []string) error {
		var labels []string
		labels = append(labels, matmuldag.EntryOrder()...)
		labels = append(labels, products...)
		var nonsinks []dag.NodeID
		for _, lb := range labels {
			v, err := matmuldag.NodeByLabel(g, lb)
			if err != nil {
				return err
			}
			nonsinks = append(nonsinks, v)
		}
		ok, step, err := lat.IsOptimal(sched.Complete(g, nonsinks))
		if err != nil {
			return err
		}
		verdict := "IC-OPTIMAL"
		if !ok {
			verdict = fmt.Sprintf("NOT optimal (first shortfall at step %d)", step)
		}
		fmt.Printf("%-34s %s\n", label, verdict)
		return nil
	}
	if err := check("Λ-paired order (Theorem 2.1)", matmuldag.PairedProductOrder()); err != nil {
		return err
	}
	if err := check("literal §7 order AE,CE,CF,AF,…", matmuldag.PaperProductOrder()); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// expE9Batch contrasts the [20] batched regimen's greedy and exact
// planners (E9).
func expE9Batch() error {
	fmt.Println("== E9: batched allocation ([20]) — greedy vs exact planner ==")
	fmt.Printf("%-12s %6s %6s %14s %13s %13s\n",
		"DAG", "WIDTH", "NODES", "GREEDY-ROUNDS", "EXACT-ROUNDS", "EXACT-MEAN-E")
	cases := []struct {
		name string
		g    *dag.Dag
	}{
		{"outmesh5", mesh.OutMesh(5)},
		{"cycle6", blocks.Cycle(6)},
		{"prefix4", prefixDag(4)},
		{"no-optimal", noOptimalDag()},
	}
	for _, tc := range cases {
		for _, w := range []int{2, 4} {
			cmp, err := batch.Run(tc.g, w)
			if err != nil {
				return err
			}
			exactRounds := "-"
			meanE := "-"
			if cmp.Exact != nil {
				exactRounds = fmt.Sprintf("%d", cmp.Exact.Rounds())
				meanE = fmt.Sprintf("%.2f", mean(cmp.ExactProf))
			}
			fmt.Printf("%-12s %6d %6d %14d %13s %13s\n",
				tc.name, w, tc.g.NumNodes(), cmp.Greedy.Rounds(), exactRounds, meanE)
		}
	}
	fmt.Println()
	return nil
}

// prefixDag builds P_n for the batch experiment.
func prefixDag(n int) *dag.Dag { return prefix.Network(n) }

// noOptimalDag is the 6-node dag that admits no IC-optimal schedule —
// the [20] motivation: batched optimality is still well defined for it.
func noOptimalDag() *dag.Dag {
	b := dag.NewBuilder(6)
	b.AddArc(0, 3)
	b.AddArc(0, 4)
	b.AddArc(1, 3)
	b.AddArc(1, 4)
	b.AddArc(2, 5)
	return b.MustBuild()
}

// expE10Granularity simulates the §4 trade-off end to end: coarser tasks
// trade parallelism for less Internet communication (E10).
func expE10Granularity() error {
	fmt.Println("== E10: granularity vs makespan (out-mesh 24, 8 clients, comm latency 3) ==")
	levels := 24
	fine := mesh.OutMesh(levels)
	fmt.Printf("%-6s %8s %10s %12s %10s\n", "f", "TASKS", "MAKESPAN", "UTILIZATION", "STALLS")
	for _, f := range []int{1, 2, 4, 6} {
		var (
			g      *dag.Dag
			weight func(dag.NodeID) float64
		)
		if f == 1 {
			g = fine
			weight = nil
		} else {
			part, k, _ := coarsen.MeshBlocks(levels, f)
			q, stats, err := coarsen.Quotient(fine, part, k)
			if err != nil {
				return err
			}
			g = q
			work := stats.Work
			weight = func(v dag.NodeID) float64 { return float64(work[v]) }
		}
		res, err := icsim.Run(g, heur.FIFO(), icsim.Config{
			Clients:     8,
			Seed:        21,
			CommLatency: 3,
			Weight:      weight,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %8d %10.1f %12.3f %10d\n",
			f, g.NumNodes(), res.Makespan, res.Utilization, res.Stalls)
	}
	fmt.Println()
	return nil
}

// expE11Demandingness counts legal vs IC-optimal schedules per family —
// how demanding the per-step optimality requirement is (E11).
func expE11Demandingness() error {
	fmt.Println("== E11: how demanding is IC optimality? (exact schedule counts) ==")
	fmt.Printf("%-10s %5s %22s %22s %10s\n", "FAMILY", "SIZE", "LEGAL-SCHEDULES", "IC-OPTIMAL", "FRACTION")
	sizes := map[string]int{
		"vee": 3, "lambda": 3, "w": 4, "n": 4, "cycle": 4,
		"outtree": 2, "intree": 2, "diamond": 2,
		"outmesh": 5, "butterfly": 2, "prefix": 4, "matmul": 0,
	}
	for _, f := range families {
		size, ok := sizes[f.name]
		if !ok {
			continue
		}
		g, _, err := f.build(size)
		if err != nil {
			return err
		}
		l, err := opt.Analyze(g)
		if err != nil {
			return err
		}
		total := l.CountSchedules()
		optimal := l.CountOptimal()
		frac := new(big.Float).Quo(new(big.Float).SetInt(optimal), new(big.Float).SetInt(total))
		fmt.Printf("%-10s %5d %22s %22s %10.2g\n", f.name, size, total.String(), optimal.String(), frac)
	}
	fmt.Println()
	return nil
}

func mean(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0
	for _, x := range xs {
		total += x
	}
	return float64(total) / float64(len(xs))
}
