package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"icsched/internal/dag"
	"icsched/internal/shard"
)

// serveSharded is the `serve -shards K` path: the dag is cut into K
// schedule-guided components and served by K embedded task servers
// behind one coordinator, each shard mounted under /shard/<i>/ with
// cross-shard arcs forwarded (and, with -wal, journaled) by the bus.
// The coordinator-level GET /status, /healthz and /metrics aggregate
// all shards.
func serveSharded(g *dag.Dag, order []dag.NodeID, family string, size int, addr string, k int, walDir string, relaxed int, withPprof bool, lease time.Duration) error {
	// Schedule-guided cut over the global IC-optimal order: contiguous
	// chunks keep the cut forward-only and the eligibility frontier
	// spread across shards.
	p, err := shard.ByOrder(g, k, g.TopoOrder())
	if err != nil {
		return err
	}
	cfg := shard.Config{Dir: walDir, Lease: lease, Relaxed: relaxed}
	coord, err := shard.New(g, order, p, cfg)
	if err != nil {
		return err
	}
	if walDir != "" {
		st := coord.Status()
		fmt.Printf("journal: %s (bus + %d shard journals, resuming at %d/%d tasks)\n",
			walDir, p.K, st.Completed, st.Total)
	}
	fmt.Printf("serving %s (size %d, %d tasks) sharded %d ways on %s\n",
		family, size, g.NumNodes(), p.K, addr)
	for _, s := range p.PerShard() {
		fmt.Printf("  shard %d: %d tasks, %d arcs in, %d arcs out (/shard/%d/)\n",
			s.Shard, s.Nodes, s.CrossIn, s.CrossOut, s.Shard)
	}
	fmt.Println("protocol per shard: POST /shard/<i>/tasks {\"k\": n} | POST /shard/<i>/report | GET /shard/<i>/status; coordinator: GET /status | GET /healthz | GET /metrics")

	handler := http.Handler(coord.Handler())
	if withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Println("pprof: mounted at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("\n%s: draining in-flight leases on %d shards (up to %v)...\n", sig, p.K, lease)
		drainCtx, cancel := context.WithTimeout(context.Background(), lease)
		defer cancel()
		if err := coord.Shutdown(drainCtx); err != nil {
			fmt.Println(err)
		}
		closeCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := httpSrv.Shutdown(closeCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		st := coord.Status()
		fmt.Printf("stopped: %d/%d tasks completed, %d reissues, %d quarantined, %d cross-shard credits\n",
			st.Completed, st.Total, st.Reissues, st.Quarantined, st.ArcsForwarded)
		return nil
	}
}
