package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"icsched/internal/chaos"
	"icsched/internal/obs"
)

// cmdChaos runs the fault-injection smoke proof: every chaos workload
// (Pascal wavefront, FFT convolution, parallel prefix) executed through
// the real HTTP task server with a crashing, erroring, lossy client
// fleet, checked bit-for-bit against the fault-free execution.  A
// non-zero exit means the recovery machinery lost work or produced a
// wrong answer.  -trace writes the server-side task trace: Chrome
// trace-event JSON for chrome://tracing, or one event per line when the
// file ends in .jsonl.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	traceOut := fs.String("trace", "", "write the task trace to this file (.json for chrome://tracing, .jsonl for raw events)")
	batch := fs.Int("batch", 0, "use the batched protocol with this per-grant cap (0 = legacy protocol)")
	kills := fs.Int("kills", 0, "additionally run the server-kill lane: SIGKILL/journal-restart the server this many times mid-run on a 32×32 wavefront")
	relaxedShards := fs.Int("relaxed", 0, "run the server-kill lane through the lock-free k-relaxed core with this shard count; each kill is armed to land between shard-pop and journal-append (0 = exact locked path)")
	shardKills := fs.Int("shardkill", 0, "additionally run the sharded-coordinator lane: kill/recover individual shards this many times mid-run on a 32×32 wavefront cut across -shards servers")
	shardCount := fs.Int("shards", 4, "shard count for the -shardkill lane")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	seed := int64(7)
	if len(args) >= 1 {
		s, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", args[0], err)
		}
		seed = s
	}
	cfg := chaos.Config{Seed: seed, Batch: *batch, Relaxed: *relaxedShards}
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		cfg.Trace = tr
	}
	rates := chaos.DefaultRates()
	fmt.Printf("chaos run (seed %d): crash %.0f%%, compute-error %.0f%%, drop %.0f%%, 500s %.0f%%, latency %.0f%%\n",
		seed, 100*rates.Crash, 100*rates.ComputeError, 100*rates.DropResponse,
		100*rates.HTTPError, 100*rates.Latency)
	if *batch > 0 {
		fmt.Printf("protocol: batched, up to %d tasks per grant\n", *batch)
	}
	reports, err := chaos.RunAll(cfg)
	if err != nil {
		return err
	}
	if *kills > 0 {
		fmt.Printf("server-kill lane: %d SIGKILL/journal-restart cycles on a 32x32 wavefront\n", *kills)
		if *relaxedShards > 0 {
			fmt.Printf("grant path: relaxed core, %d shards; kills armed between shard-pop and journal-append\n", *relaxedShards)
		}
		rep, err := chaos.ServerKill(cfg, 32, *kills)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	if *shardKills > 0 {
		fmt.Printf("shard-kill lane: %d shard kill/recover cycles on a 32x32 wavefront across %d shards\n",
			*shardKills, *shardCount)
		rep, err := chaos.ShardKill(cfg, 32, *shardCount, *shardKills)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	lost := 0
	for _, r := range reports {
		fmt.Println(r)
		lost += r.Quarantined + (r.Tasks - r.Completed)
	}
	if lost != 0 {
		return fmt.Errorf("chaos: %d tasks lost", lost)
	}
	fmt.Println("all workloads recovered: results bit-identical, 0 tasks lost")
	if tr != nil {
		out, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer out.Close()
		if strings.HasSuffix(*traceOut, ".jsonl") {
			err = tr.WriteJSONL(out)
		} else {
			err = tr.WriteChromeTrace(out)
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace: %d events written to %s\n", tr.Len(), *traceOut)
	}
	return nil
}
