package main

import (
	"testing"
)

// TestRunZipfSmoke runs the schedule-cache benchmark at a tiny job
// count: every job must finish bit-identical to its shape's serial
// reference (runZipf's own check), the Zipf mix must actually hit the
// cache, and every non-relaxed exact job must run in replay mode.
func TestRunZipfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run")
	}
	doc, err := runZipf(zipfConfig{jobs: 40, workers: 4, seed: 1, smoke: true})
	if err != nil {
		t.Fatalf("runZipf: %v", err)
	}
	if doc.HitRate <= 0.5 {
		t.Errorf("hit rate %.3f implausibly low for a Zipf mix", doc.HitRate)
	}
	if doc.Misses == 0 || doc.Hits+doc.Shared == 0 {
		t.Errorf("degenerate stats: %+v", doc)
	}
	if doc.Analyses != doc.Misses {
		t.Errorf("analyses %d != misses %d (failed computes?)", doc.Analyses, doc.Misses)
	}
	if doc.ReplayJobs != doc.Jobs {
		t.Errorf("replay jobs %d of %d: raw exact submissions should all replay", doc.ReplayJobs, doc.Jobs)
	}
	if doc.GrantPath.StaticP50Micros <= 0 || doc.GrantPath.ReplayP50Micros <= 0 {
		t.Errorf("grant-path bench produced no samples: %+v", doc.GrantPath)
	}
	if doc.ColdAnalysisMicrosMean <= doc.WarmLookupMicrosMean {
		t.Errorf("cold analysis %.1fµs not slower than warm lookup %.1fµs",
			doc.ColdAnalysisMicrosMean, doc.WarmLookupMicrosMean)
	}
}

// TestRunZipfGuardFailureKeepsDoc: a guard failure must still return
// the measured document so CI can write and upload the artifact.
func TestRunZipfGuardFailureKeepsDoc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run")
	}
	doc, err := runZipf(zipfConfig{jobs: 20, workers: 4, seed: 2, smoke: true,
		minHitRate: 1.01}) // unreachable
	if err == nil {
		t.Fatalf("unreachable hit-rate floor did not fail")
	}
	if doc.Jobs != 20 || doc.HitRate <= 0 {
		t.Fatalf("guard failure dropped the measured doc: %+v", doc)
	}
}
