package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"icsched/internal/batch"
	"icsched/internal/dag"
	"icsched/internal/dagio"
	"icsched/internal/heur"
	"icsched/internal/opt"
	"icsched/internal/sched"
)

// cmdSchedule prints a family's IC-optimal schedule as JSON.
func cmdSchedule(args []string) error {
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	g, nonsinks, err := f.build(size)
	if err != nil {
		return err
	}
	data, err := dagio.MarshalSchedule(g, sched.Complete(g, nonsinks))
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// cmdLoad reads a dag from a file (JSON if the name ends in .json, else a
// DAGMan-style edge list), then analyzes and schedules it: structural
// summary, oracle verdict when feasible, and the best available schedule.
func cmdLoad(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("load: missing file name")
	}
	g, err := loadDag(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %s (critical path %d)\n", args[0], g, g.CriticalPathLen())

	if g.NumNodes() <= opt.MaxNodes {
		l, err := opt.Analyze(g)
		if err != nil {
			return err
		}
		if order, ok := l.OptimalSchedule(); ok {
			fmt.Println("oracle: the dag ADMITS an IC-optimal schedule:")
			data, err := dagio.MarshalSchedule(g, order)
			if err != nil {
				return err
			}
			fmt.Println(string(data))
			return nil
		}
		fmt.Println("oracle: the dag admits NO IC-optimal schedule; falling back to MAX-NEW-ELIGIBLE")
	} else {
		fmt.Printf("oracle: skipped (%d nodes > %d); using MAX-NEW-ELIGIBLE\n", g.NumNodes(), opt.MaxNodes)
	}
	order, err := heur.RunOrder(g, heur.MaxNewEligible())
	if err != nil {
		return err
	}
	data, err := dagio.MarshalSchedule(g, order)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// cmdBatch plans batched allocation ([20]-style) for a family.
func cmdBatch(args []string) error {
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	width := 4
	if len(args) >= 3 {
		width, err = strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad width %q: %w", args[2], err)
		}
	}
	g, _, err := f.build(size)
	if err != nil {
		return err
	}
	cmp, err := batch.Run(g, width)
	if err != nil {
		return err
	}
	fmt.Printf("batched scheduling of %s (size %d, %d nodes) at width %d:\n",
		f.name, size, g.NumNodes(), width)
	fmt.Printf("greedy: %d rounds, post-round eligibility %v\n",
		cmp.Greedy.Rounds(), cmp.GreedyProf)
	if cmp.Exact != nil {
		fmt.Printf("exact : %d rounds, post-round eligibility %v\n",
			cmp.Exact.Rounds(), cmp.ExactProf)
	} else {
		fmt.Printf("exact : skipped (%d nodes > %d)\n", g.NumNodes(), batch.MaxNodesExact)
	}
	return nil
}

func loadDag(path string) (*dag.Dag, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".json") {
		return dagio.UnmarshalJSON(data)
	}
	return dagio.ReadEdgeList(strings.NewReader(string(data)))
}
