package main

import (
	"flag"
	"fmt"

	"icsched/internal/difftest"
)

// cmdDifftest runs the cross-layer differential-testing harness from the
// command line: N random dag instances, each executed through the
// worker-pool executor, the discrete-event simulator, and an in-process
// IC server, with trace-reconstructed profiles checked against the
// quality model and the paper's theorems (2.1, 2.2, 2.3, inequality 2.1)
// property-checked per instance.  Exit status is non-zero on any
// divergence; the failure message carries the -seed/-start flags that
// reproduce the offending instance alone.
func cmdDifftest(args []string) error {
	fs := flag.NewFlagSet("difftest", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master seed; every instance derives from it")
	n := fs.Int("n", 200, "number of random instances to check")
	start := fs.Int("start", 0, "index of the first instance (reproduce a failure with -start K -n 1)")
	maxNodes := fs.Int("maxnodes", 0, "cap on generated dag size (0 = harness default)")
	workers := fs.Int("workers", 0, "workers for the parallel executor pass (0 = harness default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := difftest.Run(difftest.Config{
		Seed: *seed, N: *n, Start: *start, MaxNodes: *maxNodes, Workers: *workers,
	})
	fmt.Println(rep)
	if err != nil {
		return err
	}
	fmt.Println("all layers agree; all theorem properties hold")
	return nil
}
