package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"icsched/internal/benchjson"
	"icsched/internal/butterfly"
	"icsched/internal/dag"
	"icsched/internal/dagio"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/jobs"
	"icsched/internal/mesh"
	"icsched/internal/prefix"
	"icsched/internal/sched"
	"icsched/internal/schedcache"
)

// Zipf mode: a Zipf-distributed stream of RAW dag payloads drawn from a
// small catalog of family shapes flows through the multi-tenant job
// service with its schedule cache.  Raw payloads take the expensive
// MAX-NEW-ELIGIBLE analysis on a cold miss, so the cache's value shows
// directly: the run reports hit rate, cold-vs-warm analysis latency,
// and — via an icserver-level microbenchmark — the grant-path latency
// of cursor replay vs the static-policy search.  Results land in
// BENCH_cache.json; the -min* flags turn the run into a CI guard.

// zipfConfig parameterizes one zipf-mode run.
type zipfConfig struct {
	jobs    int
	workers int
	seed    int64
	smoke   bool
	// Guards (0 = off): minimum cache hit rate, minimum cold/warm
	// analysis speedup, and the maximum allowed replay-vs-static
	// grant-path p99 ratio.
	minHitRate        float64
	minAnalysisFactor float64
	maxReplayP99Ratio float64
}

// zipfShape is one catalog entry: a family-shaped dag submitted as a
// raw dagio payload.
type zipfShape struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`

	payload json.RawMessage
	ref     []uint64
	g       *dag.Dag
}

// zipfGrantPath is the grant-path microbenchmark block: serial
// AllocateBatch latency against the same dag and order under the
// static-policy search vs cursor replay.
type zipfGrantPath struct {
	Family           string  `json:"family"`
	Nodes            int     `json:"nodes"`
	Batch            int     `json:"batch"`
	StaticP50Micros  float64 `json:"staticP50Micros"`
	StaticP99Micros  float64 `json:"staticP99Micros"`
	ReplayP50Micros  float64 `json:"replayP50Micros"`
	ReplayP99Micros  float64 `json:"replayP99Micros"`
	ReplaySpeedupP99 float64 `json:"replaySpeedupP99"`
}

// zipfFile is the BENCH_cache.json schema.
type zipfFile struct {
	Smoke   bool        `json:"smoke"`
	Jobs    int         `json:"jobs"`
	ZipfS   float64     `json:"zipfS"`
	Catalog []zipfShape `json:"catalog"`

	HitRate    float64 `json:"hitRate"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Shared     uint64  `json:"shared"`
	Evictions  uint64  `json:"evictions"`
	Collisions uint64  `json:"collisions"`
	Analyses   uint64  `json:"analyses"`
	ReplayJobs int     `json:"replayJobs"`

	ColdAnalysisMicrosMean float64 `json:"coldAnalysisMicrosMean"`
	WarmLookupMicrosMean   float64 `json:"warmLookupMicrosMean"`
	AnalysisSpeedup        float64 `json:"analysisSpeedup"`

	ColdJobP50Millis float64 `json:"coldJobP50Millis"`
	ColdJobP99Millis float64 `json:"coldJobP99Millis"`
	WarmJobP50Millis float64 `json:"warmJobP50Millis"`
	WarmJobP99Millis float64 `json:"warmJobP99Millis"`

	GrantPath zipfGrantPath `json:"grantPath"`
}

// zipfS is the catalog skew: shape k drawn ∝ 1/(k+1)^zipfS, so a
// handful of hot shapes dominates — the steady-state regime schedule
// caching targets.
const zipfS = 1.3

// zipfCatalog builds the shape catalog: family dags serialized as raw
// dagio payloads, so every cold submission pays the MAX-NEW-ELIGIBLE
// analysis and every warm one just the canonical-hash lookup.
func zipfCatalog(smoke bool) ([]zipfShape, error) {
	type src struct {
		name string
		g    *dag.Dag
	}
	var srcs []src
	add := func(name string, g *dag.Dag) { srcs = append(srcs, src{name, g}) }
	if smoke {
		for _, s := range []int{6, 8, 10} {
			add(fmt.Sprintf("wavefront-%d", s), mesh.Grid(s, s))
		}
		for _, d := range []int{3, 4} {
			add(fmt.Sprintf("fftconv-%d", d), butterfly.Network(d))
		}
		for _, n := range []int{16, 32} {
			add(fmt.Sprintf("prefix-%d", n), prefix.Network(n))
		}
	} else {
		for _, s := range []int{8, 12, 16, 20, 24} {
			add(fmt.Sprintf("wavefront-%d", s), mesh.Grid(s, s))
		}
		for _, d := range []int{3, 4, 5} {
			add(fmt.Sprintf("fftconv-%d", d), butterfly.Network(d))
		}
		for _, n := range []int{32, 64, 128, 256} {
			add(fmt.Sprintf("prefix-%d", n), prefix.Network(n))
		}
	}
	shapes := make([]zipfShape, len(srcs))
	for i, s := range srcs {
		payload, err := dagio.MarshalJSON(s.g)
		if err != nil {
			return nil, fmt.Errorf("zipf: marshal %s: %w", s.name, err)
		}
		ref, err := loadgenReference(s.g, s.g.TopoOrder())
		if err != nil {
			return nil, fmt.Errorf("zipf: reference %s: %w", s.name, err)
		}
		shapes[i] = zipfShape{Name: s.name, Nodes: s.g.NumNodes(),
			payload: payload, ref: ref, g: s.g}
	}
	return shapes, nil
}

// runZipf executes the zipf-mode benchmark and applies its guards.
func runZipf(cfg zipfConfig) (zipfFile, error) {
	catalog, err := zipfCatalog(cfg.smoke)
	if err != nil {
		return zipfFile{}, err
	}
	doc := zipfFile{Smoke: cfg.smoke, Jobs: cfg.jobs, ZipfS: zipfS, Catalog: catalog}

	cache := schedcache.New(schedcache.Options{})
	s := jobs.New(jobs.Config{MaxQueued: cfg.jobs + 64, Cache: cache})

	rng := rand.New(rand.NewSource(cfg.seed))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(catalog)-1))
	jobShape := make(map[string]int)
	vals := make(map[string][]uint64)
	var mu sync.Mutex // guards vals (workers hash concurrently)
	for i := 0; i < cfg.jobs; i++ {
		k := int(zipf.Uint64())
		st, err := s.Submit(jobs.Spec{Tenant: "zipf", Dag: catalog[k].payload})
		if err != nil {
			return doc, fmt.Errorf("zipf: submit %d: %w", i, err)
		}
		jobShape[st.Job] = k
		vals[st.Job] = make([]uint64, catalog[k].Nodes)
	}

	// The fleet: workers allocate job-scoped batches, hash the FNV node
	// values, and report, until every job is terminal.
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				grant, err := s.Allocate(8)
				if err != nil {
					errCh <- err
					return
				}
				if len(grant.Tasks) == 0 {
					st := s.ServiceStatus()
					if st.Finished+st.Failed >= cfg.jobs {
						return
					}
					time.Sleep(200 * time.Microsecond)
					continue
				}
				shape := catalog[jobShape[grant.Job]]
				done := make([]dag.NodeID, len(grant.Tasks))
				mu.Lock()
				for i, tg := range grant.Tasks {
					vals[grant.Job][tg.Task] = fnvNodeValue(shape.g, tg.Task, vals[grant.Job])
					done[i] = tg.Task
				}
				mu.Unlock()
				if _, err := s.Report(grant.Job, done, nil, grant.Epoch, 0); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return doc, fmt.Errorf("zipf: fleet: %w", err)
	}

	// Bit-identity: every job's values must match its shape's serial
	// reference, warm and cold alike.
	var coldLats, warmLats []float64
	for _, st := range s.Jobs() {
		if st.State != jobs.StateFinished {
			return doc, fmt.Errorf("zipf: job %s ended %s: %s", st.Job, st.State, st.Error)
		}
		shape := catalog[jobShape[st.Job]]
		for v, got := range vals[st.Job] {
			if got != shape.ref[v] {
				return doc, fmt.Errorf("zipf: job %s (%s) node %d = %#x, want %#x",
					st.Job, shape.Name, v, got, shape.ref[v])
			}
		}
		if st.CacheHit {
			warmLats = append(warmLats, st.LatencyMillis)
		} else {
			coldLats = append(coldLats, st.LatencyMillis)
		}
		if st.Replay {
			doc.ReplayJobs++
		}
	}
	sort.Float64s(coldLats)
	sort.Float64s(warmLats)
	doc.ColdJobP50Millis = percentile(coldLats, 0.50)
	doc.ColdJobP99Millis = percentile(coldLats, 0.99)
	doc.WarmJobP50Millis = percentile(warmLats, 0.50)
	doc.WarmJobP99Millis = percentile(warmLats, 0.99)

	cs := cache.Stats()
	doc.HitRate = cs.HitRate()
	doc.Hits, doc.Misses, doc.Shared = cs.Hits, cs.Misses, cs.Shared
	doc.Evictions, doc.Collisions, doc.Analyses = cs.Evictions, cs.Collisions, cs.Analyses
	if cs.Misses > 0 {
		doc.ColdAnalysisMicrosMean = float64(cs.ColdNanos) / 1e3 / float64(cs.Misses)
	}
	if warm := cs.Hits + cs.Shared; warm > 0 {
		doc.WarmLookupMicrosMean = float64(cs.WarmNanos) / 1e3 / float64(warm)
	}
	if doc.WarmLookupMicrosMean > 0 {
		doc.AnalysisSpeedup = doc.ColdAnalysisMicrosMean / doc.WarmLookupMicrosMean
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	cerr := s.Close(ctx)
	cancel()
	if cerr != nil {
		return doc, fmt.Errorf("zipf: close: %w", cerr)
	}

	doc.GrantPath = grantPathBench(cfg.smoke)

	if cfg.minHitRate > 0 && doc.HitRate < cfg.minHitRate {
		return doc, fmt.Errorf("zipf: hit rate %.3f < floor %.3f", doc.HitRate, cfg.minHitRate)
	}
	if cfg.minAnalysisFactor > 0 && doc.AnalysisSpeedup < cfg.minAnalysisFactor {
		return doc, fmt.Errorf("zipf: warm analysis speedup %.1f× < floor %.1f×",
			doc.AnalysisSpeedup, cfg.minAnalysisFactor)
	}
	if cfg.maxReplayP99Ratio > 0 && doc.GrantPath.ReplayP99Micros > cfg.maxReplayP99Ratio*doc.GrantPath.StaticP99Micros {
		return doc, fmt.Errorf("zipf: replay grant p99 %.2fµs > %.2f× static p99 %.2fµs",
			doc.GrantPath.ReplayP99Micros, cfg.maxReplayP99Ratio, doc.GrantPath.StaticP99Micros)
	}
	return doc, nil
}

// grantPathBench measures serial AllocateBatch latency on a wavefront
// dag under the static-policy search vs cursor replay of the same
// IC-optimal order: the warm grant path the cache unlocks.
func grantPathBench(smoke bool) zipfGrantPath {
	size, batch, reps := 32, 8, 10
	if smoke {
		size, reps = 16, 4
	}
	g := mesh.Grid(size, size)
	order := sched.Complete(g, mesh.GridDiagonalNonsinks(size, size))
	// One unmeasured warmup pass per path, then interleaved measured
	// passes, so allocator/scheduler drift lands on both paths evenly and
	// the p99 is taken over thousands of calls rather than a few hundred.
	driveGrantPath(g, order, batch, false)
	driveGrantPath(g, order, batch, true)
	var static, replay []float64
	for r := 0; r < reps; r++ {
		static = append(static, driveGrantPath(g, order, batch, false)...)
		replay = append(replay, driveGrantPath(g, order, batch, true)...)
	}
	sort.Float64s(static)
	sort.Float64s(replay)
	gp := zipfGrantPath{
		Family: fmt.Sprintf("wavefront-%d", size), Nodes: g.NumNodes(), Batch: batch,
		StaticP50Micros: percentile(static, 0.50), StaticP99Micros: percentile(static, 0.99),
		ReplayP50Micros: percentile(replay, 0.50), ReplayP99Micros: percentile(replay, 0.99),
	}
	if gp.ReplayP99Micros > 0 {
		gp.ReplaySpeedupP99 = gp.StaticP99Micros / gp.ReplayP99Micros
	}
	return gp
}

// writeZipf writes BENCH_cache.json and prints the human summary.
func writeZipf(doc zipfFile, out string) error {
	if err := benchjson.Write(out, doc, "jobs", "hitRate", "catalog", "grantPath"); err != nil {
		return err
	}
	fmt.Printf("zipf: %d jobs over %d shapes (s=%.1f): hit rate %.3f (%d hits, %d shared, %d misses), %d replay jobs\n",
		doc.Jobs, len(doc.Catalog), doc.ZipfS, doc.HitRate, doc.Hits, doc.Shared, doc.Misses, doc.ReplayJobs)
	fmt.Printf("analysis: cold %.1fµs mean vs warm lookup %.1fµs mean (%.1fx)\n",
		doc.ColdAnalysisMicrosMean, doc.WarmLookupMicrosMean, doc.AnalysisSpeedup)
	fmt.Printf("job latency: cold p50/p99 %.3f/%.3f ms, warm p50/p99 %.3f/%.3f ms\n",
		doc.ColdJobP50Millis, doc.ColdJobP99Millis, doc.WarmJobP50Millis, doc.WarmJobP99Millis)
	gp := doc.GrantPath
	fmt.Printf("grant path (%s, batch %d): static p50/p99 %.2f/%.2f µs, replay p50/p99 %.2f/%.2f µs (p99 %.2fx)\n",
		gp.Family, gp.Batch, gp.StaticP50Micros, gp.StaticP99Micros,
		gp.ReplayP50Micros, gp.ReplayP99Micros, gp.ReplaySpeedupP99)
	if out != "-" {
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// driveGrantPath runs one serial pass over g's order, timing each
// AllocateBatch call in microseconds.
func driveGrantPath(g *dag.Dag, order []dag.NodeID, batch int, useReplay bool) []float64 {
	var srv *icserver.Server
	if useReplay {
		srv = icserver.New(g, schedcache.Replay("IC-CACHED", order), icserver.WithLease(0))
	} else {
		srv = icserver.New(g, heur.Static("IC-OPTIMAL", order), icserver.WithLease(0))
	}
	var times []float64
	for {
		t0 := time.Now()
		b, state := srv.AllocateBatch(batch)
		dt := time.Since(t0)
		if state == icserver.AllocFinished {
			return times
		}
		times = append(times, float64(dt.Nanoseconds())/1e3)
		for _, v := range b {
			if _, err := srv.Complete(v); err != nil {
				return times
			}
		}
		if len(b) == 0 {
			return times // stalled; should not happen serially
		}
	}
}
