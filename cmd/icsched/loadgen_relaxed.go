package main

// The relaxation sweep: the quality/throughput frontier of the lock-free
// k-relaxed grant core (internal/relaxed) against the exact locked
// scheduler, written to BENCH_relaxed.json.
//
// Unlike the HTTP cells of BENCH_throughput.json, the sweep drives the
// server in process — client goroutines calling AllocateBatch /
// ReportAllocate directly.  The relaxed core removes per-grant scheduler
// work (the locked path re-sorts its offered pool on every completion);
// through HTTP that difference drowns in JSON and TCP costs, in process
// it is the thing being measured.  Every cell still checks the FNV
// ground truth bit for bit and reconstructs its realized eligibility
// profile from the shared obs trace, so the frontier prices exactly what
// the relaxation costs: the worst-step ratio of the realized profile
// against the exact ELIGIBLE-prefix profile of the same schedule.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"icsched/internal/butterfly"
	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/obs"
	"icsched/internal/sched"
)

// relaxedResult is one (clients, k) cell of the sweep; Relaxed == 0 is
// the locked-path baseline.
type relaxedResult struct {
	Family      string  `json:"family"`
	Nodes       int     `json:"nodes"`
	Clients     int     `json:"clients"`
	Relaxed     int     `json:"relaxed"` // shard count; 0 = exact locked path
	Batch       int     `json:"batch"`
	WallMillis  float64 `json:"wallMillis"`
	TasksPerSec float64 `json:"tasksPerSec"`
	// WorstStepRatio prices the realized eligibility profile against the
	// exact ELIGIBLE-prefix profile (1.0 = no quality loss); QualityGap is
	// max(0, 1 - WorstStepRatio).
	WorstStepRatio float64 `json:"worstStepRatio"`
	QualityGap     float64 `json:"qualityGap"`
	MeanEligible   float64 `json:"meanEligible"`
	Reissues       int     `json:"reissues"`
	Quarantined    int     `json:"quarantined"`
}

// relaxedFile is the BENCH_relaxed.json document.
type relaxedFile struct {
	GoMaxP  int    `json:"gomaxprocs"`
	Smoke   bool   `json:"smoke"`
	Note    string `json:"note"`
	Clients []int  `json:"clients"`
	Ks      []int  `json:"ks"`
	Batch   int    `json:"batch"`
	// K1BitIdentical records the degeneration proof: a serial relaxed(1)
	// drive realized exactly the locked scheduler's allocation order.
	K1BitIdentical bool `json:"k1BitIdentical"`
	// Frontier summary at the highest client count: locked baseline, best
	// k ≥ 4 relaxed cell, and their ratio (the CI guard input).
	LockedTasksPerSec  float64         `json:"lockedTasksPerSec"`
	RelaxedTasksPerSec float64         `json:"relaxedTasksPerSec"`
	Speedup            float64         `json:"speedup"`
	Results            []relaxedResult `json:"results"`
}

const relaxedNote = "in-process grant-path benchmark: client goroutines call " +
	"AllocateBatch/ReportAllocate directly, isolating scheduler cost from HTTP/JSON overhead"

// relaxedSweepConfig parameterizes one sweep (split out for tests).
type relaxedSweepConfig struct {
	clients    []int
	ks         []int // shard counts; 0 = locked baseline, must be present
	batch      int
	smoke      bool
	minSpeedup float64 // frontier floor at max clients; 0 disables
}

// relaxedSweepFamily returns the sweep's dag: the d=8 FFT-convolution
// butterfly (2304 nodes in 256-wide ranks).  The wide eligible frontier
// is the regime the relaxation targets — the locked path re-sorts a pool
// of up to 2^d tasks on every completion, while the relaxed core's push
// and pop stay O(1) regardless of frontier width.
func relaxedSweepFamily() loadgenFamily {
	return loadgenFamily{"fftconv", 8, func(s int) (*dag.Dag, []dag.NodeID) {
		return butterfly.Network(s), butterfly.Nonsinks(s)
	}}
}

// driveInproc is the in-process steady-state client loop: bootstrap with
// AllocateBatch, then piggyback every later grant on the previous ack.
func driveInproc(srv *icserver.Server, b int, compute func(dag.NodeID)) error {
	batch, state := srv.AllocateBatch(b)
	for {
		switch state {
		case icserver.AllocFinished:
			return nil
		case icserver.AllocEmpty:
			time.Sleep(20 * time.Microsecond) // other clients hold all eligible work
			batch, state = srv.AllocateBatch(b)
			continue
		case icserver.AllocOK:
		default:
			return fmt.Errorf("allocate state %v", state)
		}
		for _, v := range batch {
			compute(v)
		}
		var err error
		_, batch, state, err = srv.ReportAllocate(batch, nil, b)
		if err != nil {
			return err
		}
	}
}

// runRelaxedCell executes one (clients, k) fleet drain with FNV
// verification.  With traced set, the server records the shared obs
// trace and the result carries the reconstructed quality metrics; timing
// reps run untraced so the throughput number prices the grant path, not
// the trace mutex.
func runRelaxedCell(fam loadgenFamily, clients, k, batch int, ref []uint64, exactProf []int, traced bool) (relaxedResult, error) {
	g, nonsinks := fam.build(fam.size)
	order := sched.Complete(g, nonsinks)
	opts := []icserver.Option{icserver.WithLease(time.Minute)}
	var tr *obs.Trace
	if traced {
		tr = obs.NewTrace()
		opts = append(opts, icserver.WithTrace(tr))
	}
	if k > 0 {
		opts = append(opts, icserver.WithRelaxed(k))
	}
	srv := icserver.New(g, heur.Static("IC-OPTIMAL", order), opts...)

	// Values are written with atomic stores, not a global mutex: a task's
	// parents are reported (under the scheduler lock, or through the
	// core's CAS) before the task is granted, so the parent loads are
	// ordered without a benchmark-private lock diluting the measurement.
	vals := make([]uint64, g.NumNodes())
	compute := func(v dag.NodeID) {
		h := fnvNodeValueAtomic(g, v, vals)
		atomic.StoreUint64(&vals[v], h)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = driveInproc(srv, batch, compute)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for c, err := range errs {
		if err != nil {
			return relaxedResult{}, fmt.Errorf("k=%d: client %d: %w", k, c, err)
		}
	}
	st := srv.Status()
	if !srv.Finished() || st.Completed != g.NumNodes() {
		return relaxedResult{}, fmt.Errorf("k=%d: completed %d of %d tasks", k, st.Completed, g.NumNodes())
	}
	for v := range ref {
		if vals[v] != ref[v] {
			return relaxedResult{}, fmt.Errorf("k=%d: node %d computed %#x, want %#x (exec.Run reference)",
				k, v, vals[v], ref[v])
		}
	}
	res := relaxedResult{
		Family:      fam.name,
		Nodes:       g.NumNodes(),
		Clients:     clients,
		Relaxed:     k,
		Batch:       batch,
		WallMillis:  float64(wall.Microseconds()) / 1000,
		TasksPerSec: float64(g.NumNodes()) / wall.Seconds(),
		Reissues:    st.Reissues,
		Quarantined: st.Quarantined,
	}
	if !traced {
		return res, nil
	}
	prof, err := tr.EligibilityProfile()
	if err != nil {
		return relaxedResult{}, fmt.Errorf("k=%d: trace reconstruction: %w", k, err)
	}
	ratio, err := sched.WorstStepRatio(prof, exactProf)
	if err != nil {
		return relaxedResult{}, fmt.Errorf("k=%d: %w", k, err)
	}
	res.WorstStepRatio = ratio
	res.QualityGap = 1 - ratio
	if res.QualityGap < 0 {
		res.QualityGap = 0
	}
	res.MeanEligible = sched.Mean(prof)
	return res, nil
}

// fnvNodeValueAtomic is fnvNodeValue with atomic parent loads, for the
// lock-free compute path of the sweep cells.
func fnvNodeValueAtomic(g *dag.Dag, v dag.NodeID, vals []uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	}
	mix(uint64(v))
	for _, p := range g.Parents(v) {
		mix(atomic.LoadUint64(&vals[p]))
	}
	return h
}

// relaxedBitIdentity proves the k=1 degeneration: a serial relaxed(1)
// drive must realize exactly the locked scheduler's allocation order.
func relaxedBitIdentity(fam loadgenFamily) (bool, error) {
	g, nonsinks := fam.build(fam.size)
	order := sched.Complete(g, nonsinks)
	drive := func(opts ...icserver.Option) ([]dag.NodeID, error) {
		srv := icserver.New(g, heur.Static("IC-OPTIMAL", order), opts...)
		var got []dag.NodeID
		for {
			v, state := srv.Allocate()
			if state == icserver.AllocFinished {
				return got, nil
			}
			if state != icserver.AllocOK {
				return nil, fmt.Errorf("stalled after %d grants", len(got))
			}
			got = append(got, v)
			if _, err := srv.Complete(v); err != nil {
				return nil, err
			}
		}
	}
	exact, err := drive()
	if err != nil {
		return false, fmt.Errorf("locked drive: %w", err)
	}
	rel, err := drive(icserver.WithRelaxed(1))
	if err != nil {
		return false, fmt.Errorf("relaxed(1) drive: %w", err)
	}
	if len(exact) != len(rel) {
		return false, fmt.Errorf("locked granted %d tasks, relaxed(1) %d", len(exact), len(rel))
	}
	for i := range exact {
		if exact[i] != rel[i] {
			return false, fmt.Errorf("grant %d: locked %d, relaxed(1) %d", i, exact[i], rel[i])
		}
	}
	return true, nil
}

// runRelaxedSweep measures the full frontier and enforces the guard: the
// best k ≥ 4 cell at the highest client count must beat the locked
// baseline at the same client count by minSpeedup.
func runRelaxedSweep(cfg relaxedSweepConfig) (relaxedFile, error) {
	fam := relaxedSweepFamily()
	doc := relaxedFile{
		GoMaxP: runtime.GOMAXPROCS(0), Smoke: cfg.smoke, Note: relaxedNote,
		Clients: cfg.clients, Ks: cfg.ks, Batch: cfg.batch,
	}
	g, nonsinks := fam.build(fam.size)
	order := sched.Complete(g, nonsinks)
	ref, err := loadgenReference(g, order)
	if err != nil {
		return doc, fmt.Errorf("loadgen: relaxed reference: %w", err)
	}
	exactProf, err := sched.Profile(g, order)
	if err != nil {
		return doc, fmt.Errorf("loadgen: exact profile: %w", err)
	}
	if doc.K1BitIdentical, err = relaxedBitIdentity(fam); err != nil {
		return doc, fmt.Errorf("loadgen: k=1 bit-identity: %w", err)
	}

	maxClients := 0
	for _, c := range cfg.clients {
		if c > maxClients {
			maxClients = c
		}
	}
	// Cells are repeated and the fastest rep kept: a single drain of even
	// the 64×64 grid lasts milliseconds, and the frontier guard should
	// compare scheduler costs, not scheduling jitter.
	reps := 5
	if cfg.smoke {
		reps = 3
	}
	for _, clients := range cfg.clients {
		for _, k := range cfg.ks {
			var res relaxedResult
			for rep := 0; rep < reps; rep++ {
				r, err := runRelaxedCell(fam, clients, k, cfg.batch, ref, exactProf, false)
				if err != nil {
					return doc, fmt.Errorf("loadgen: relaxed cell (%d clients): %w", clients, err)
				}
				if rep == 0 || r.TasksPerSec > res.TasksPerSec {
					res = r
				}
			}
			// One extra traced (untimed) drain reconstructs the realized
			// eligibility profile for the quality side of the frontier.
			q, err := runRelaxedCell(fam, clients, k, cfg.batch, ref, exactProf, true)
			if err != nil {
				return doc, fmt.Errorf("loadgen: relaxed quality cell (%d clients): %w", clients, err)
			}
			res.WorstStepRatio, res.QualityGap, res.MeanEligible =
				q.WorstStepRatio, q.QualityGap, q.MeanEligible
			doc.Results = append(doc.Results, res)
			if clients == maxClients {
				if k == 0 {
					doc.LockedTasksPerSec = res.TasksPerSec
				} else if k >= 4 && res.TasksPerSec > doc.RelaxedTasksPerSec {
					doc.RelaxedTasksPerSec = res.TasksPerSec
				}
			}
		}
	}
	if doc.LockedTasksPerSec > 0 {
		doc.Speedup = doc.RelaxedTasksPerSec / doc.LockedTasksPerSec
	}
	if cfg.minSpeedup > 0 && doc.Speedup < cfg.minSpeedup {
		return doc, fmt.Errorf("loadgen: relaxed k≥4 throughput %.0f tasks/s is %.2f× the locked baseline %.0f tasks/s at %d clients, floor %.2f×",
			doc.RelaxedTasksPerSec, doc.Speedup, doc.LockedTasksPerSec, maxClients, cfg.minSpeedup)
	}
	return doc, nil
}
