package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/sched"
	"icsched/internal/wal"
)

// cmdServe runs the Internet-computing task server for a family on the
// given address, allocating in IC-optimal order.  Clients follow the
// protocol in internal/icserver (POST /task, POST /done, POST /failed,
// GET /status, GET /healthz, GET /metrics).  -pprof additionally mounts
// net/http/pprof under /debug/pprof/ for live profiling.  On
// SIGINT/SIGTERM the server drains: /task refuses new work while
// in-flight leases get up to one lease period to report, then the
// listener shuts down.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	withPprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	walDir := fs.String("wal", "", "crash-safe mode: journal every state change to this directory and resume from it on restart")
	relaxedShards := fs.Int("relaxed", 0, "grant through the lock-free k-relaxed core with this shard count (0 = exact locked path; 1 is bit-identical to it)")
	numShards := fs.Int("shards", 0, "cut the dag into this many shard servers behind one coordinator (0/1 = single server); workers address shard i under /shard/<i>/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	addr := ":8080"
	if len(args) >= 3 {
		addr = args[2]
	}
	g, nonsinks, err := f.build(size)
	if err != nil {
		return err
	}
	lease := time.Minute
	order := sched.Complete(g, nonsinks)
	if *numShards > 1 {
		return serveSharded(g, order, f.name, size, addr, *numShards, *walDir, *relaxedShards, *withPprof, lease)
	}
	opts := []icserver.Option{icserver.WithLease(lease)}
	if *relaxedShards > 0 {
		opts = append(opts, icserver.WithRelaxed(*relaxedShards))
	}
	var srv *icserver.Server
	if *walDir != "" {
		srv, err = icserver.Recover(*walDir, g, heur.Static("IC-OPTIMAL", order),
			wal.Options{}, opts...)
		if err != nil {
			return err
		}
		st := srv.Status()
		fmt.Printf("journal: %s (epoch %d, resuming at %d/%d tasks)\n",
			*walDir, st.Epoch, st.Completed, st.Total)
	} else {
		srv = icserver.New(g, heur.Static("IC-OPTIMAL", order), opts...)
	}
	if *relaxedShards > 0 {
		fmt.Printf("grant path: lock-free relaxed core, %d shards\n", *relaxedShards)
	}
	fmt.Printf("serving %s (size %d, %d tasks) on %s\n", f.name, size, g.NumNodes(), addr)
	fmt.Println("protocol: POST /task | POST /done {\"task\": id} | POST /failed {\"task\": id} | GET /status | GET /healthz | GET /metrics")

	handler := srv.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Println("pprof: mounted at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("\n%s: draining in-flight leases (up to %v)...\n", sig, lease)
		drainCtx, cancel := context.WithTimeout(context.Background(), lease)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Println(err)
		}
		closeCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := httpSrv.Shutdown(closeCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		st := srv.Status()
		fmt.Printf("stopped: %d/%d tasks completed, %d reissues, %d quarantined\n",
			st.Completed, st.Total, st.Reissues, st.Quarantined)
		return nil
	}
}
