package main

import (
	"fmt"
	"net/http"
	"time"

	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/sched"
)

// cmdServe runs the Internet-computing task server for a family on the
// given address, allocating in IC-optimal order.  Clients follow the
// protocol in internal/icserver (POST /task, POST /done, GET /status).
func cmdServe(args []string) error {
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	addr := ":8080"
	if len(args) >= 3 {
		addr = args[2]
	}
	g, nonsinks, err := f.build(size)
	if err != nil {
		return err
	}
	order := sched.Complete(g, nonsinks)
	srv := icserver.New(g, heur.Static("IC-OPTIMAL", order),
		icserver.WithLease(time.Minute))
	fmt.Printf("serving %s (size %d, %d tasks) on %s\n", f.name, size, g.NumNodes(), addr)
	fmt.Println("protocol: POST /task | POST /done {\"task\": id} | GET /status")
	return http.ListenAndServe(addr, srv.Handler())
}
