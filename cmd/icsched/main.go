// Command icsched is the command-line face of the IC-Scheduling library:
// it generates the paper's dag families, emits their figures as DOT,
// verifies IC-optimality against the exact oracle, prints eligibility
// profiles against the heuristic schedulers, runs the Internet-computing
// simulator, and regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	icsched families
//	icsched dot <family> [size]
//	icsched verify <family> [size]
//	icsched profile <family> [size]
//	icsched sim <family> [size] [clients]
//	icsched experiments
package main

import (
	"fmt"
	"os"
	"strconv"

	"icsched/internal/heur"
	"icsched/internal/icsim"
	"icsched/internal/opt"
	"icsched/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icsched:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "families":
		return cmdFamilies()
	case "dot":
		return cmdDot(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	case "profile":
		return cmdProfile(args[1:])
	case "sim":
		return cmdSim(args[1:])
	case "schedule":
		return cmdSchedule(args[1:])
	case "load":
		return cmdLoad(args[1:])
	case "prioritize":
		return cmdPrioritize(args[1:])
	case "count":
		return cmdCount(args[1:])
	case "batch":
		return cmdBatch(args[1:])
	case "figures":
		return cmdFigures(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "chaos":
		return cmdChaos(args[1:])
	case "difftest":
		return cmdDifftest(args[1:])
	case "bench":
		return cmdBench(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "experiments":
		return cmdExperiments()
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage() {
	fmt.Println(`icsched — IC-Scheduling Theory toolbox (Cordasco/Malewicz/Rosenberg, IPPS 2007)

commands:
  families                    list the dag families
  dot <family> [size]         emit the family's dag in Graphviz DOT
  verify <family> [size]      check the family's schedule against the exact oracle
  profile <family> [size]     print eligibility profiles: IC-optimal vs heuristics
  sim <family> [size] [N]     simulate Internet computing with N clients
  schedule <family> [size]    print the IC-optimal schedule as JSON
  load <file>                 read a dag (.json or edge list), analyze & schedule it
  prioritize <file>           emit PRIO-style "task priority" lines for a workflow
  count <family> [size]       count legal vs IC-optimal schedules (exact oracle)
  batch <family> [size] [w]   plan batched allocation ([20]-style), greedy vs exact
  figures [dir]               write every paper figure as a DOT file (default ./figures)
  serve [-pprof] [-wal DIR] [-shards K] <family> [size] [addr] run the HTTP task server (default :8080);
                              -shards K cuts the dag across K shard servers behind one coordinator
  chaos [-trace FILE] [-kills N] [-shardkill N -shards K] [seed]  fault-injection proof: all workloads under chaos, bit-checked
  difftest [-seed S] [-n N]   differential test: exec vs icsim vs icserver + theorem properties
  bench [flags] [family...]   run families through the executor, write BENCH_*.json
  loadgen [flags]             HTTP throughput benchmark: single vs batched protocol, write BENCH_throughput.json
                              (-stream BENCH_stream.json, -relaxed BENCH_relaxed.json, -zipf schedule-cache BENCH_cache.json,
                               -shards sharded-coordinator BENCH_shard.json)
  experiments                 regenerate the EXPERIMENTS.md tables`)
}

func parseFamily(args []string) (family, int, error) {
	if len(args) < 1 {
		return family{}, 0, fmt.Errorf("missing family name")
	}
	f, err := familyByName(args[0])
	if err != nil {
		return family{}, 0, err
	}
	size := defaultSize(f.name)
	if len(args) >= 2 {
		size, err = strconv.Atoi(args[1])
		if err != nil {
			return family{}, 0, fmt.Errorf("bad size %q: %w", args[1], err)
		}
	}
	return f, size, nil
}

func cmdFamilies() error {
	fmt.Printf("%-10s %-34s %s\n", "NAME", "SIZE PARAMETER", "DESCRIPTION")
	for _, f := range families {
		fmt.Printf("%-10s %-34s %s\n", f.name, f.sizes, f.desc)
	}
	return nil
}

func cmdDot(args []string) error {
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	g, _, err := f.build(size)
	if err != nil {
		return err
	}
	fmt.Print(g.DOT(fmt.Sprintf("%s_%d", f.name, size)))
	return nil
}

func cmdVerify(args []string) error {
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	g, nonsinks, err := f.build(size)
	if err != nil {
		return err
	}
	order := sched.Complete(g, nonsinks)
	fmt.Printf("family %s (size %d): %s\n", f.name, size, g)
	if err := sched.Validate(g, order); err != nil {
		return fmt.Errorf("schedule invalid: %w", err)
	}
	fmt.Println("schedule: legal")
	if g.NumNodes() > opt.MaxNodes {
		fmt.Printf("oracle: skipped (%d nodes exceed the %d-node exact-oracle limit)\n",
			g.NumNodes(), opt.MaxNodes)
		return nil
	}
	l, err := opt.Analyze(g)
	if err != nil {
		return err
	}
	ok, step, err := l.IsOptimal(order)
	if err != nil {
		return err
	}
	if ok {
		fmt.Printf("oracle: IC-OPTIMAL (ideal lattice: %d ideals)\n", l.NumIdeals())
	} else {
		fmt.Printf("oracle: NOT optimal — first shortfall at step %d\n", step)
	}
	return nil
}

func cmdProfile(args []string) error {
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	g, nonsinks, err := f.build(size)
	if err != nil {
		return err
	}
	optOrder := sched.Complete(g, nonsinks)
	rows := []struct {
		name  string
		order []int
	}{}
	prof, err := sched.Profile(g, optOrder)
	if err != nil {
		return err
	}
	rows = append(rows, struct {
		name  string
		order []int
	}{"IC-OPTIMAL", prof})
	for _, p := range heur.Standard(1) {
		order, err := heur.RunOrder(g, p)
		if err != nil {
			return err
		}
		hp, err := sched.Profile(g, order)
		if err != nil {
			return err
		}
		rows = append(rows, struct {
			name  string
			order []int
		}{p.Name(), hp})
	}
	fmt.Printf("eligibility profiles for %s (size %d), E(t) after t executions:\n", f.name, size)
	for _, r := range rows {
		fmt.Printf("%-18s", r.name)
		for t, e := range r.order {
			if t%10 == 0 && t > 0 {
				fmt.Print(" |")
			}
			fmt.Printf(" %2d", e)
		}
		fmt.Println()
	}
	return nil
}

func cmdSim(args []string) error {
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	clients := 8
	if len(args) >= 3 {
		clients, err = strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad client count %q: %w", args[2], err)
		}
	}
	g, nonsinks, err := f.build(size)
	if err != nil {
		return err
	}
	policies := append([]heur.Policy{
		heur.Static("IC-OPTIMAL", sched.Complete(g, nonsinks)),
	}, heur.Standard(17)...)
	results, err := icsim.Compare(g, policies, icsim.Config{Clients: clients, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("IC simulation of %s (size %d, %d nodes) with %d clients:\n\n",
		f.name, size, g.NumNodes(), clients)
	fmt.Printf("%-18s %10s %8s %11s %12s %14s\n",
		"POLICY", "MAKESPAN", "STALLS", "STALL-TIME", "UTILIZATION", "AVG-ELIGIBLE")
	for _, r := range results {
		fmt.Printf("%-18s %10.2f %8d %11.2f %12.3f %14.2f\n",
			r.Policy, r.Makespan, r.Stalls, r.StallTime, r.Utilization, r.AvgEligibleAtRequest)
	}
	return nil
}
