package main

import (
	"flag"

	"fmt"
	"icsched/internal/benchjson"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"icsched/internal/dag"
	"icsched/internal/exec"
	"icsched/internal/obs"
	"icsched/internal/sched"
)

// writeJSON marshals doc with indentation to the given destination
// ("-" for stdout).
func writeJSON(dest string, doc any) error {
	return benchjson.Write(dest, doc)
}

// startProfiles turns on the requested pprof profiles and returns the
// function that finalizes them: it stops the CPU profile and snapshots
// the heap after a GC, so `go tool pprof` reads both files directly.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("bench: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("bench: cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Printf("wrote CPU profile %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
				return
			}
			fmt.Printf("wrote heap profile %s\n", memPath)
		}
	}, nil
}

// benchResult is one family's measurement: wall time of a real executor
// run plus the paper's quality aggregates over the realized eligibility
// profile (reconstructed from the run trace) and the serial IC-optimal
// oracle profile.
type benchResult struct {
	Family       string  `json:"family"`
	Size         int     `json:"size"`
	Nodes        int     `json:"nodes"`
	Workers      int     `json:"workers"`
	WallMillis   float64 `json:"wallMillis"`
	Area         int     `json:"eligibilityArea"`
	MeanEligible float64 `json:"meanEligibility"`
	OracleArea   int     `json:"oracleArea"`
	OracleMean   float64 `json:"oracleMean"`
	Retries      int     `json:"retries"`
	TraceEvents  int     `json:"traceEvents"`
}

// benchFile is the BENCH_*.json document.
type benchFile struct {
	Workers int           `json:"workers"`
	Flaky   int           `json:"flakyPercent"`
	GoMaxP  int           `json:"gomaxprocs"`
	Results []benchResult `json:"results"`
}

// benchSize gives each family a size that makes an executor run worth
// timing (the demo defaultSize dags are figure-sized, a few nodes).
func benchSize(name string, quick bool) int {
	full := map[string]int{
		"outmesh": 40, "inmesh": 40, "grid": 24, "butterfly": 6,
		"prefix": 64, "outtree": 9, "intree": 9, "diamond": 8,
		"forkjoin": 64, "montage": 24, "dlt": 64, "dlt2": 64,
	}
	small := map[string]int{
		"outmesh": 12, "inmesh": 12, "grid": 8, "butterfly": 4,
		"prefix": 16, "outtree": 6, "intree": 6, "diamond": 5,
		"forkjoin": 16, "montage": 10, "dlt": 16, "dlt2": 16,
	}
	m := full
	if quick {
		m = small
	}
	if s, ok := m[name]; ok {
		return s
	}
	return defaultSize(name)
}

// cmdBench runs dag families through the real worker-pool executor with
// a trace attached and writes the measurements as JSON: wall time,
// eligibility area and mean (sched.Area / sched.Mean over the
// trace-reconstructed profile and the IC-optimal oracle profile), and
// retry counts.  -flaky injects a deterministic transient first-attempt
// failure into the given percentage of tasks to exercise the retry path.
//
// -oracle switches to the oracle benchmark instead: the frontier
// ideal-lattice analysis against the retained pre-frontier baseline on a
// fixed dag set, written as BENCH_oracle.json.  -cpuprofile/-memprofile
// write pprof profiles of the benchmark run itself (the offline
// counterpart of `serve -pprof`).
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "", "output JSON file (- for stdout; default BENCH_exec.json, or BENCH_oracle.json with -oracle)")
	workers := fs.Int("workers", 4, "executor worker goroutines")
	quick := fs.Bool("quick", false, "small sizes / short timing budget (CI smoke run)")
	flaky := fs.Int("flaky", 0, "percent of tasks whose first attempt fails (deterministic)")
	oracleMode := fs.Bool("oracle", false, "benchmark the IC-optimality oracle (frontier vs. legacy) instead of the executor")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the benchmark run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file when the run ends")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("bench: %d workers", *workers)
	}
	if *flaky < 0 || *flaky > 100 {
		return fmt.Errorf("bench: flaky %d%% outside [0, 100]", *flaky)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	if *oracleMode {
		doc, err := runBenchOracle(*quick)
		if err != nil {
			return err
		}
		dest := *out
		if dest == "" {
			dest = "BENCH_oracle.json"
		}
		if err := writeJSON(dest, doc); err != nil {
			return err
		}
		printBenchOracle(doc)
		if dest != "-" {
			fmt.Printf("wrote %s (%d dags)\n", dest, len(doc.Results))
		}
		return nil
	}
	names := fs.Args()
	if len(names) == 0 {
		names = []string{"outmesh", "butterfly", "prefix", "grid"}
	}

	doc := benchFile{Workers: *workers, Flaky: *flaky, GoMaxP: runtime.GOMAXPROCS(0)}
	for _, name := range names {
		f, err := familyByName(name)
		if err != nil {
			return err
		}
		size := benchSize(f.name, *quick)
		g, nonsinks, err := f.build(size)
		if err != nil {
			return err
		}
		order := sched.Complete(g, nonsinks)
		rank, err := exec.RankFromOrder(g, order)
		if err != nil {
			return err
		}
		oracle, err := sched.Profile(g, order)
		if err != nil {
			return err
		}
		tr := obs.NewTrace()
		task := func(dag.NodeID) error { return nil }
		if *flaky > 0 {
			failed := make([]bool, g.NumNodes())
			var mu sync.Mutex
			task = func(v dag.NodeID) error {
				mu.Lock()
				defer mu.Unlock()
				if !failed[v] && int(v)%100 < *flaky {
					failed[v] = true
					return fmt.Errorf("bench: injected transient failure on %s", g.Name(v))
				}
				return nil
			}
		}
		startT := time.Now()
		if _, err := exec.RunRetryObserved(g, rank, *workers, 2, task, tr); err != nil {
			return fmt.Errorf("bench: %s: %w", f.name, err)
		}
		wall := time.Since(startT)
		profile, err := tr.EligibilityProfile()
		if err != nil {
			return fmt.Errorf("bench: %s trace: %w", f.name, err)
		}
		retries := 0
		for _, ev := range tr.Events() {
			if ev.Phase == obs.PhaseRetry {
				retries++
			}
		}
		doc.Results = append(doc.Results, benchResult{
			Family:       f.name,
			Size:         size,
			Nodes:        g.NumNodes(),
			Workers:      *workers,
			WallMillis:   float64(wall.Microseconds()) / 1000,
			Area:         sched.Area(profile),
			MeanEligible: sched.Mean(profile),
			OracleArea:   sched.Area(oracle),
			OracleMean:   sched.Mean(oracle),
			Retries:      retries,
			TraceEvents:  tr.Len(),
		})
	}

	dest := *out
	if dest == "" {
		dest = "BENCH_exec.json"
	}
	if err := writeJSON(dest, doc); err != nil {
		return err
	}
	fmt.Printf("%-10s %6s %6s %10s %10s %10s %8s\n",
		"FAMILY", "NODES", "WORK", "WALL-MS", "MEAN-E", "ORACLE-E", "RETRIES")
	for _, r := range doc.Results {
		fmt.Printf("%-10s %6d %6d %10.2f %10.2f %10.2f %8d\n",
			r.Family, r.Nodes, r.Workers, r.WallMillis, r.MeanEligible, r.OracleMean, r.Retries)
	}
	if dest != "-" {
		fmt.Printf("wrote %s (%d families)\n", dest, len(doc.Results))
	}
	return nil
}
