package main

import (
	"fmt"

	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/opt"
)

// cmdPrioritize mimics the PRIO tool of [19]: read a workflow dag (edge
// list or JSON), compute an IC-quality-maximizing execution order, and
// emit one "name priority" line per task — higher priority means execute
// earlier — ready to paste into a DAGMan-style submit file.
func cmdPrioritize(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("prioritize: missing file name")
	}
	g, err := loadDag(args[0])
	if err != nil {
		return err
	}
	order, source, err := prioritizedOrder(g)
	if err != nil {
		return err
	}
	fmt.Printf("# %d tasks, order source: %s\n", g.NumNodes(), source)
	n := len(order)
	for i, v := range order {
		// DAGMan convention: larger priority runs first.
		fmt.Printf("%s %d\n", g.Name(v), n-i)
	}
	return nil
}

// prioritizedOrder picks the best available schedule: the exact oracle's
// IC-optimal schedule when the dag is small enough and admits one,
// otherwise the MAX-NEW-ELIGIBLE heuristic.
func prioritizedOrder(g *dag.Dag) ([]dag.NodeID, string, error) {
	if g.NumNodes() <= opt.MaxNodes {
		l, err := opt.Analyze(g)
		if err != nil {
			return nil, "", err
		}
		if order, ok := l.OptimalSchedule(); ok {
			return order, "exact oracle (IC-optimal)", nil
		}
		order, err := heur.RunOrder(g, heur.MaxNewEligible())
		if err != nil {
			return nil, "", err
		}
		return order, "MAX-NEW-ELIGIBLE (no IC-optimal schedule exists)", nil
	}
	order, err := heur.RunOrder(g, heur.MaxNewEligible())
	if err != nil {
		return nil, "", err
	}
	return order, "MAX-NEW-ELIGIBLE (dag exceeds exact-oracle size)", nil
}
