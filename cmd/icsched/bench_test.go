package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchCommandWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_exec.json")
	if err := run([]string{"bench", "-quick", "-workers", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bench output is not valid JSON: %v", err)
	}
	if len(doc.Results) < 3 {
		t.Fatalf("bench covered %d families, want >= 3", len(doc.Results))
	}
	for _, r := range doc.Results {
		if r.Nodes <= 0 || r.WallMillis < 0 {
			t.Fatalf("nonsense result: %+v", r)
		}
		if r.Area <= 0 || r.MeanEligible <= 0 {
			t.Fatalf("%s: empty eligibility aggregates: %+v", r.Family, r)
		}
		// Fault-free runs realize the schedule's completion order in some
		// interleaving; the realized area matches the oracle when the
		// executor is serialized per completion, and is always positive.
		if r.Retries != 0 {
			t.Fatalf("%s: %d retries in a fault-free bench", r.Family, r.Retries)
		}
	}
}

func TestBenchCommandInjectsRetries(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_flaky.json")
	if err := run([]string{"bench", "-quick", "-flaky", "30", "-out", out, "outmesh"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 || doc.Results[0].Retries == 0 {
		t.Fatalf("flaky bench recorded no retries: %+v", doc.Results)
	}
}

func TestBenchCommandRejectsBadFlags(t *testing.T) {
	if err := run([]string{"bench", "-workers", "0"}); err == nil {
		t.Fatal("0 workers accepted")
	}
	if err := run([]string{"bench", "-flaky", "150"}); err == nil {
		t.Fatal("flaky 150% accepted")
	}
	if err := run([]string{"bench", "nosuchfamily"}); err == nil {
		t.Fatal("unknown family accepted")
	}
}
