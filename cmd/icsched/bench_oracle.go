package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"icsched/internal/dag"
	"icsched/internal/mesh"
	"icsched/internal/opt"
)

// oracleBenchResult is one dag's oracle measurement: best-of wall time
// of the frontier analysis (default worker pool) against the retained
// pre-frontier implementation on the same run, where the dag is within
// the legacy 26-node cap.  Dags beyond it report only the frontier time
// — the whole point of the raised MaxNodes.
type oracleBenchResult struct {
	Dag            string  `json:"dag"`
	Nodes          int     `json:"nodes"`
	NumIdeals      int     `json:"numIdeals"`
	Admits         bool    `json:"admits"`
	FrontierMillis float64 `json:"frontierMillis"`
	LegacyMillis   float64 `json:"legacyMillis,omitempty"` // 0 when beyond the legacy cap
	Speedup        float64 `json:"speedup,omitempty"`      // legacy / frontier, same run
}

// oracleBenchFile is the BENCH_oracle.json document.
type oracleBenchFile struct {
	GoMaxP         int                 `json:"gomaxprocs"`
	MaxNodes       int                 `json:"maxNodes"`
	LegacyMaxNodes int                 `json:"legacyMaxNodes"`
	Results        []oracleBenchResult `json:"results"`
}

// oracleBenchDag names one benchmark dag.  The layered dags are seeded,
// so the exact instances are reproducible; layered-24 is the acceptance
// dag of the frontier rewrite (a 24-node random layered dag).
type oracleBenchDag struct {
	name  string
	build func() *dag.Dag
}

func oracleBenchDags() []oracleBenchDag {
	layered := func(seed int64, layers []int, maxIn int) func() *dag.Dag {
		return func() *dag.Dag {
			return dag.RandomLayered(rand.New(rand.NewSource(seed)), layers, maxIn)
		}
	}
	return []oracleBenchDag{
		{"layered-24", layered(1, []int{4, 5, 5, 5, 5}, 3)},
		{"outmesh-21", func() *dag.Dag { return mesh.OutMesh(6) }},
		{"outmesh-28", func() *dag.Dag { return mesh.OutMesh(7) }},
		{"layered-33", layered(2, []int{3, 6, 6, 6, 6, 6}, 2)},
	}
}

// bestOf repeatedly times f and returns the fastest run: a warmup pass,
// then at least minReps runs within the given budget.
func bestOf(budget time.Duration, minReps int, f func() error) (time.Duration, error) {
	if err := f(); err != nil {
		return 0, err
	}
	var best time.Duration
	deadline := time.Now().Add(budget)
	for reps := 0; reps < minReps || time.Now().Before(deadline); reps++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
		if reps >= 1000 {
			break
		}
	}
	return best, nil
}

// runBenchOracle measures the frontier oracle against the legacy
// baseline and returns the BENCH_oracle.json document.
func runBenchOracle(quick bool) (oracleBenchFile, error) {
	budget, minReps := 300*time.Millisecond, 5
	if quick {
		budget, minReps = 100*time.Millisecond, 3
	}
	doc := oracleBenchFile{
		GoMaxP:         runtime.GOMAXPROCS(0),
		MaxNodes:       opt.MaxNodes,
		LegacyMaxNodes: opt.LegacyMaxNodes,
	}
	for _, d := range oracleBenchDags() {
		g := d.build()
		lat, err := opt.Analyze(g)
		if err != nil {
			return doc, fmt.Errorf("bench: oracle %s: %w", d.name, err)
		}
		res := oracleBenchResult{
			Dag:       d.name,
			Nodes:     g.NumNodes(),
			NumIdeals: lat.NumIdeals(),
			Admits:    lat.Exists(),
		}
		frontier, err := bestOf(budget, minReps, func() error {
			_, err := opt.Analyze(g)
			return err
		})
		if err != nil {
			return doc, fmt.Errorf("bench: oracle %s: %w", d.name, err)
		}
		res.FrontierMillis = float64(frontier.Nanoseconds()) / 1e6
		if g.NumNodes() <= opt.LegacyMaxNodes {
			legacy, err := bestOf(budget, minReps, func() error {
				_, err := opt.AnalyzeLegacy(g)
				return err
			})
			if err != nil {
				return doc, fmt.Errorf("bench: legacy oracle %s: %w", d.name, err)
			}
			res.LegacyMillis = float64(legacy.Nanoseconds()) / 1e6
			if frontier > 0 {
				res.Speedup = float64(legacy) / float64(frontier)
			}
		}
		doc.Results = append(doc.Results, res)
	}
	return doc, nil
}

func printBenchOracle(doc oracleBenchFile) {
	fmt.Printf("%-12s %6s %10s %12s %12s %8s\n",
		"DAG", "NODES", "IDEALS", "FRONT-MS", "LEGACY-MS", "SPEEDUP")
	for _, r := range doc.Results {
		legacy, speedup := "-", "-"
		if r.LegacyMillis > 0 {
			legacy = fmt.Sprintf("%.3f", r.LegacyMillis)
			speedup = fmt.Sprintf("%.1fx", r.Speedup)
		}
		fmt.Printf("%-12s %6d %10d %12.3f %12s %8s\n",
			r.Dag, r.Nodes, r.NumIdeals, r.FrontierMillis, legacy, speedup)
	}
}
