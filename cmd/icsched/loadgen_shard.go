package main

// Sharded-coordinator benchmark mode (`loadgen -shards`): one large
// journaled wavefront executed by K shard servers behind one
// coordinator, against the journaled single-server baseline, written
// to BENCH_shard.json.
//
// The methodology note matters on this repo's 1-CPU reference box: no
// configuration can win on lock parallelism alone when GOMAXPROCS=1.
// What sharding buys is stall overlap under durability — a journaled
// server fsyncs its WAL inline under the scheduler lock (every
// SyncEvery appends) and writes O(n) snapshots inline, and on a
// single server every client stalls behind those holds; with K shards
// each journal syncs under its own shard's lock while the other
// shards' grant/report handlers keep the CPU busy.  Both sides of
// every cell here run with identical journaling options, so the
// comparison is durability-for-durability.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"icsched/internal/benchjson"
	"icsched/internal/dag"
	"icsched/internal/heur"
	"icsched/internal/icserver"
	"icsched/internal/mesh"
	"icsched/internal/sched"
	"icsched/internal/shard"
	"icsched/internal/wal"
)

// shardCell is one shard-count cell of BENCH_shard.json.  Shards == 1
// is the plain single-icserver baseline (no coordinator, no bus).
type shardCell struct {
	Shards      int     `json:"shards"`
	WallMillis  float64 `json:"wallMillis"`
	TasksPerSec float64 `json:"tasksPerSec"`
	// Cross-shard traffic: arcs in the cut, credits applied, duplicate
	// forwardings suppressed, and completion-to-credit latency through
	// the journaled bus.
	CrossArcs        int     `json:"crossArcs"`
	ArcsForwarded    int     `json:"arcsForwarded"`
	ArcsDeduplicated int     `json:"arcsDeduplicated"`
	ForwardP50Micros float64 `json:"forwardP50Micros"`
	ForwardP99Micros float64 `json:"forwardP99Micros"`
	// Fleet behavior: batches pulled from non-home shards, stale-epoch
	// resyncs, server-side reissues.
	Steals   int `json:"steals"`
	Resyncs  int `json:"resyncs"`
	Reissues int `json:"reissues"`
	// PerShard is the cut geometry (node and cross-arc counts per
	// shard); empty for the baseline cell.
	PerShard []shard.Stats `json:"perShard,omitempty"`
}

// shardFile is the BENCH_shard.json document.
type shardFile struct {
	Family    string `json:"family"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	Nodes     int    `json:"nodes"`
	Clients   int    `json:"clients"`
	Batch     int    `json:"batch"`
	GoMaxP    int    `json:"gomaxprocs"`
	Smoke     bool   `json:"smoke"`
	Journaled bool   `json:"journaled"`
	Note      string `json:"note"`
	// Headline: the journaled single server vs the best K > 1 cell.
	SingleTasksPerSec  float64     `json:"singleTasksPerSec"`
	ShardedTasksPerSec float64     `json:"shardedTasksPerSec"`
	BestShards         int         `json:"bestShards"`
	Speedup            float64     `json:"speedup"`
	Results            []shardCell `json:"results"`
}

const shardNote = "strict-durability cells (fsync every append, identical wal.Options both " +
	"sides) on GOMAXPROCS=1: sharding wins by overlapping WAL fsync/snapshot stalls — " +
	"each fsync holds one shard's scheduler lock while the runtime hands the CPU to the " +
	"other shards' grant/report handlers — not by lock parallelism"

// shardBenchConfig parameterizes one `loadgen -shards` run (split out
// so tests drive runShardBench directly).
type shardBenchConfig struct {
	clients     int
	batch       int
	smoke       bool
	minSpeedup  float64 // best-K/single floor; 0 disables
	shardCounts []int
	rows, cols  int
	syncEvery   int // fsync cadence for every journal; default 1 (strict)
}

func (c shardBenchConfig) withDefaults() shardBenchConfig {
	if c.batch <= 0 {
		c.batch = 16
	}
	if c.syncEvery <= 0 {
		// Strict durability: every scheduling event is on disk before the
		// response that depends on it.  This is the regime sharding is
		// for — with group commit (SyncEvery 64) journal stalls are a
		// small slice of wall and the coordinator's forwarding overhead
		// wins instead.
		c.syncEvery = 1
	}
	if len(c.shardCounts) == 0 {
		c.shardCounts = []int{1, 2, 4}
		if c.smoke {
			c.shardCounts = []int{1, 4}
		}
	}
	if c.rows == 0 {
		// ≥ 10^5 nodes full-size: the regime where inline journal stalls
		// dominate a single server's wall clock.
		c.rows, c.cols = 320, 320
		if c.smoke {
			c.rows, c.cols = 64, 64
		}
	}
	return c
}

// runShardBench executes the shard-count sweep and enforces the
// speedup floor.
func runShardBench(cfg shardBenchConfig) (shardFile, error) {
	cfg = cfg.withDefaults()
	g := mesh.Grid(cfg.rows, cfg.cols)
	order := sched.Complete(g, mesh.GridDiagonalNonsinks(cfg.rows, cfg.cols))
	ref, err := loadgenReference(g, order)
	if err != nil {
		return shardFile{}, fmt.Errorf("shardbench: reference: %w", err)
	}
	doc := shardFile{
		Family: "wavefront", Rows: cfg.rows, Cols: cfg.cols, Nodes: g.NumNodes(),
		Clients: cfg.clients, Batch: cfg.batch,
		GoMaxP: runtime.GOMAXPROCS(0), Smoke: cfg.smoke,
		Journaled: true, Note: shardNote,
	}
	for _, k := range cfg.shardCounts {
		var (
			cell shardCell
			err  error
		)
		if k == 1 {
			cell, err = runShardBaselineCell(g, order, ref, cfg)
		} else {
			cell, err = runShardCell(g, order, ref, k, cfg)
		}
		if err != nil {
			return doc, fmt.Errorf("shardbench: %d-shard cell: %w", k, err)
		}
		doc.Results = append(doc.Results, cell)
		if k == 1 {
			doc.SingleTasksPerSec = cell.TasksPerSec
		} else if cell.TasksPerSec > doc.ShardedTasksPerSec {
			doc.ShardedTasksPerSec = cell.TasksPerSec
			doc.BestShards = cell.Shards
		}
	}
	if doc.SingleTasksPerSec > 0 && doc.ShardedTasksPerSec > 0 {
		doc.Speedup = doc.ShardedTasksPerSec / doc.SingleTasksPerSec
	}
	if cfg.minSpeedup > 0 && doc.Speedup < cfg.minSpeedup {
		return doc, fmt.Errorf("shardbench: best sharded throughput %.0f tasks/s is %.2fx the single-server %.0f tasks/s, floor is %.2fx",
			doc.ShardedTasksPerSec, doc.Speedup, doc.SingleTasksPerSec, cfg.minSpeedup)
	}
	return doc, nil
}

// shardBenchValues returns the FNV value slice and the compute hook for
// one cell.  No mutex: a node's parents complete (and write their
// values) strictly before the server makes the node eligible, and every
// grant travels through the shard's scheduler lock plus an HTTP
// response, so the write of a parent's value happens-before the read by
// its child's compute.
func shardBenchValues(g *dag.Dag) ([]uint64, func(v dag.NodeID)) {
	vals := make([]uint64, g.NumNodes())
	return vals, func(v dag.NodeID) { vals[v] = fnvNodeValue(g, v, vals) }
}

// runShardBaselineCell measures the journaled single server with the
// batched client fleet — the K=1 reference every shard cell is scored
// against.
func runShardBaselineCell(g *dag.Dag, order []dag.NodeID, ref []uint64, cfg shardBenchConfig) (shardCell, error) {
	dir, err := os.MkdirTemp("", "icsched-shardbench-")
	if err != nil {
		return shardCell{}, err
	}
	defer os.RemoveAll(dir)
	srv, err := icserver.Recover(dir, g, heur.Static("IC-OPTIMAL", order),
		wal.Options{SyncEvery: cfg.syncEvery}, icserver.WithLease(time.Minute))
	if err != nil {
		return shardCell{}, err
	}
	defer srv.Kill()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	httpc := benchTransport(cfg.clients)
	defer httpc.CloseIdleConnections()

	vals, computeNode := shardBenchValues(g)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.clients)
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &icserver.Client{
				BaseURL:     ts.URL,
				HTTP:        httpc,
				Compute:     func(v dag.NodeID, _ string) error { computeNode(v); return nil },
				Batch:       cfg.batch,
				IdleWait:    100 * time.Microsecond,
				IdleWaitMax: time.Millisecond,
				ID:          fmt.Sprintf("shardbench-base-%d", c),
				Seed:        derivedSeed("shardbench-base", c),
			}
			_, errs[c] = cl.Run(ctx)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for c, err := range errs {
		if err != nil {
			return shardCell{}, fmt.Errorf("baseline client %d: %w", c, err)
		}
	}
	st := srv.Status()
	if !srv.Finished() || st.Completed != g.NumNodes() {
		return shardCell{}, fmt.Errorf("baseline completed %d of %d", st.Completed, g.NumNodes())
	}
	for v := range ref {
		if vals[v] != ref[v] {
			return shardCell{}, fmt.Errorf("baseline node %d computed %#x, want %#x", v, vals[v], ref[v])
		}
	}
	return shardCell{
		Shards:      1,
		WallMillis:  float64(wall.Microseconds()) / 1000,
		TasksPerSec: float64(g.NumNodes()) / wall.Seconds(),
		Reissues:    st.Reissues,
	}, nil
}

// runShardCell measures one K-shard coordinator cell with the
// home-pinned work-stealing worker fleet.
func runShardCell(g *dag.Dag, order []dag.NodeID, ref []uint64, k int, cfg shardBenchConfig) (shardCell, error) {
	// Row-banded cut: chunks of the row-major topological order keep the
	// diagonal wavefront crossing every shard, so the shards pipeline
	// instead of running one after another (ByLevels on a grid would
	// band by anti-diagonal and serialize them).
	p, err := shard.ByOrder(g, k, g.TopoOrder())
	if err != nil {
		return shardCell{}, err
	}
	dir, err := os.MkdirTemp("", "icsched-shardbench-")
	if err != nil {
		return shardCell{}, err
	}
	defer os.RemoveAll(dir)
	coord, err := shard.New(g, order, p, shard.Config{
		Dir:     dir,
		Lease:   time.Minute,
		WalOpts: wal.Options{SyncEvery: cfg.syncEvery},
	})
	if err != nil {
		return shardCell{}, err
	}
	defer coord.Kill()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	httpc := benchTransport(cfg.clients)
	defer httpc.CloseIdleConnections()

	vals, computeNode := shardBenchValues(g)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.clients)
	stats := make([]shard.WorkerStats, cfg.clients)
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := &shard.Worker{
				BaseURL: ts.URL,
				HTTP:    httpc,
				Shards:  p.K,
				Home:    c % p.K,
				Compute: func(sh int, task dag.NodeID, _ string) error {
					computeNode(p.Global(sh, task))
					return nil
				},
				Batch:       cfg.batch,
				IdleWait:    100 * time.Microsecond,
				IdleWaitMax: time.Millisecond,
				ID:          fmt.Sprintf("shardbench-%d-%d", k, c),
				Seed:        derivedSeed(fmt.Sprintf("shardbench-%d", k), c),
			}
			stats[c], errs[c] = w.Run(ctx)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for c, err := range errs {
		if err != nil {
			return shardCell{}, fmt.Errorf("worker %d: %w", c, err)
		}
	}
	st := coord.Status()
	if !coord.Finished() || st.Completed != g.NumNodes() {
		return shardCell{}, fmt.Errorf("completed %d of %d", st.Completed, g.NumNodes())
	}
	for v := range ref {
		if vals[v] != ref[v] {
			return shardCell{}, fmt.Errorf("node %d computed %#x, want %#x", v, vals[v], ref[v])
		}
	}
	steals, resyncs := 0, 0
	for _, ws := range stats {
		steals += ws.Steals
		resyncs += ws.Resyncs
	}
	// The forwarding-latency handle is shared with the coordinator's
	// registry; help and buckets here are ignored.
	fwd := coord.Metrics().Histogram("icshard_forward_latency_seconds", "", nil)
	return shardCell{
		Shards:           p.K,
		WallMillis:       float64(wall.Microseconds()) / 1000,
		TasksPerSec:      float64(g.NumNodes()) / wall.Seconds(),
		CrossArcs:        len(p.Cross),
		ArcsForwarded:    st.ArcsForwarded,
		ArcsDeduplicated: st.ArcsDeduplicated,
		ForwardP50Micros: 1e6 * fwd.QuantileOr(0.50, 0),
		ForwardP99Micros: 1e6 * fwd.QuantileOr(0.99, 0),
		Steals:           steals,
		Resyncs:          resyncs,
		Reissues:         st.Reissues,
		PerShard:         p.PerShard(),
	}, nil
}

// benchTransport is one pooled transport for a hammering fleet (the
// runCell idiom: http.DefaultClient keeps only two idle connections
// per host, so the fleet would re-dial TCP instead of measuring).
func benchTransport(clients int) *http.Client {
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * clients,
		MaxIdleConnsPerHost: 2 * clients,
	}}
}

// writeShard writes BENCH_shard.json plus the stdout summary table.
func writeShard(doc shardFile, out string) error {
	if err := benchjson.Write(out, doc, "gomaxprocs", "note", "nodes", "speedup",
		"singleTasksPerSec", "shardedTasksPerSec", "results"); err != nil {
		return err
	}
	fmt.Printf("%-7s %10s %12s %10s %10s %8s %12s %12s\n",
		"SHARDS", "WALL-MS", "TASKS/SEC", "CROSS", "FORWARDED", "STEALS", "FWD-P50-US", "FWD-P99-US")
	for _, r := range doc.Results {
		fmt.Printf("%-7d %10.1f %12.0f %10d %10d %8d %12.1f %12.1f\n",
			r.Shards, r.WallMillis, r.TasksPerSec, r.CrossArcs, r.ArcsForwarded,
			r.Steals, r.ForwardP50Micros, r.ForwardP99Micros)
	}
	fmt.Printf("shard: %d-node wavefront, best %d shards %.0f tasks/s vs single %.0f tasks/s (%.2fx, journaled both sides)\n",
		doc.Nodes, doc.BestShards, doc.ShardedTasksPerSec, doc.SingleTasksPerSec, doc.Speedup)
	if out != "-" {
		fmt.Printf("wrote %s (%d cells)\n", out, len(doc.Results))
	}
	return nil
}
