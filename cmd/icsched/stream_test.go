package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestDerivedSeedDeterministicAndDistinct is the regression guard for
// the jitter-seed derivation: the old bare per-process counter handed
// the same seed sequence to every same-sized fleet, so two tenants'
// fleets (or two benchmark cells) backed off in lockstep.  Seeds must
// be a pure function of (tenant, client), distinct across every pair in
// a realistic fleet, and never zero (zero falls back to the counter).
func TestDerivedSeedDeterministicAndDistinct(t *testing.T) {
	tenants := []string{"tenant-0", "tenant-1", "tenant-2", "tenant-3",
		"wavefront", "fftconv", "prefix", "fleet", "a", "ab", "b"}
	seen := map[int64]string{}
	for _, tenant := range tenants {
		for c := 0; c < 64; c++ {
			s := derivedSeed(tenant, c)
			if s <= 0 {
				t.Fatalf("derivedSeed(%q, %d) = %d, want positive", tenant, c, s)
			}
			if s != derivedSeed(tenant, c) {
				t.Fatalf("derivedSeed(%q, %d) not deterministic", tenant, c)
			}
			key := tenant + "/" + string(rune(c))
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestPercentile(t *testing.T) {
	cases := []struct {
		sorted []float64
		q      float64
		want   float64
	}{
		{nil, 0.5, 0},
		{[]float64{7}, 0.5, 7},
		{[]float64{1, 2, 3, 4}, 0.5, 2},
		{[]float64{1, 2, 3, 4}, 0.99, 4},
		{[]float64{1, 2, 3, 4}, 0, 1},
		{[]float64{1, 2, 3, 4}, 1, 4},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.q); got != c.want {
			t.Fatalf("percentile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
		}
	}
}

// TestRunStreamSmoke is the acceptance scenario end to end: a 4-tenant
// Poisson stream of mixed wavefront/fftconv/prefix jobs through the
// multi-tenant service, killed and recovered once mid-stream, with
// every job verified bit-identical against the serial exec.Run
// reference inside runStream and the equal-weight fairness guard armed.
func TestRunStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full stream benchmark")
	}
	doc, err := runStream(streamConfig{
		clients: 6, tenants: 4, jobsPerTenant: 4,
		rate: 200, seed: 7, maxSkew: 2, smoke: true,
	})
	if err != nil {
		t.Fatalf("runStream: %v", err)
	}
	if doc.Jobs != 16 || doc.Finished != 16 {
		t.Fatalf("finished %d of %d jobs", doc.Finished, doc.Jobs)
	}
	if !doc.MidStreamRecover {
		t.Fatal("stream completed without the mid-stream recovery")
	}
	if doc.FairnessRatio > 2 {
		t.Fatalf("fairness ratio %.2f > 2 at equal weights", doc.FairnessRatio)
	}
	if len(doc.PerTenant) != 4 {
		t.Fatalf("per-tenant rows: %d", len(doc.PerTenant))
	}
	for _, tr := range doc.PerTenant {
		if tr.Submitted != 4 || tr.Completed != 4 {
			t.Fatalf("tenant %s: %d submitted / %d completed, want 4/4", tr.Tenant, tr.Submitted, tr.Completed)
		}
		if tr.LatencyP50Millis <= 0 || tr.LatencyP99Millis < tr.LatencyP50Millis {
			t.Fatalf("tenant %s: implausible latencies %+v", tr.Tenant, tr)
		}
	}
}

// TestWriteStreamSchema checks BENCH_stream.json round-trips with the
// fields the CI schema validation reads.
func TestWriteStreamSchema(t *testing.T) {
	doc := streamFile{
		Clients: 8, Tenants: 4, JobsPerTenant: 6, Smoke: true, Seed: 1,
		Jobs: 24, Finished: 24, WallMillis: 210.4, JobsPerSec: 114.1,
		MidStreamRecover: true, Resyncs: 3, FairnessRatio: 1.0,
		PerTenant: []streamTenantResult{{
			Tenant: "tenant-0", Weight: 1, Submitted: 6, Completed: 6,
			LatencyP50Millis: 7.1, LatencyP99Millis: 31.9,
		}},
	}
	out := filepath.Join(t.TempDir(), "BENCH_stream.json")
	if err := writeStream(doc, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var got streamFile
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	if !got.MidStreamRecover || got.Finished != 24 || len(got.PerTenant) != 1 ||
		got.PerTenant[0].LatencyP99Millis != 31.9 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}
