package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunHelpAndFamilies(t *testing.T) {
	for _, args := range [][]string{nil, {"help"}, {"families"}} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
}

func TestRunUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestVerifyEveryFamilyAtDefaultSize(t *testing.T) {
	for _, f := range families {
		if err := run([]string{"verify", f.name}); err != nil {
			t.Fatalf("verify %s: %v", f.name, err)
		}
	}
}

func TestDotAndScheduleCommands(t *testing.T) {
	for _, cmd := range []string{"dot", "schedule"} {
		if err := run([]string{cmd, "diamond", "2"}); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestProfileCommand(t *testing.T) {
	if err := run([]string{"profile", "outmesh", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestSimCommand(t *testing.T) {
	if err := run([]string{"sim", "prefix", "8", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sim", "prefix", "8", "x"}); err == nil {
		t.Fatal("bad client count accepted")
	}
}

func TestBatchCommand(t *testing.T) {
	if err := run([]string{"batch", "outmesh", "4", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"batch", "outmesh", "4", "zero"}); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestLoadCommandEdgeList(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.txt")
	if err := os.WriteFile(path, []byte("setup build\nbuild test\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"load", path}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCommandJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.json")
	if err := os.WriteFile(path, []byte(`{"nodes": 3, "arcs": [[0,1],[0,2]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"load", path}); err != nil {
		t.Fatal(err)
	}
}

func TestPrioritizeCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.txt")
	if err := os.WriteFile(path, []byte("fetch sim\nsim analyze\nfetch render\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"prioritize", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"prioritize"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCountCommand(t *testing.T) {
	if err := run([]string{"count", "diamond", "2"}); err != nil {
		t.Fatal(err)
	}
	// Too large for the oracle.
	if err := run([]string{"count", "butterfly", "4"}); err == nil {
		t.Fatal("oversized count accepted")
	}
}

func TestLoadCommandErrors(t *testing.T) {
	if err := run([]string{"load"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"load", "/nonexistent/x.txt"}); err == nil {
		t.Fatal("missing path accepted")
	}
}

func TestParseFamilyErrors(t *testing.T) {
	if _, _, err := parseFamily(nil); err == nil {
		t.Fatal("missing family accepted")
	}
	if _, _, err := parseFamily([]string{"nope"}); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, _, err := parseFamily([]string{"vee", "huge?"}); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestFiguresCommand(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"figures", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// All 17 paper figures (some with sub-parts) plus the extras.
	if len(entries) < 20 {
		t.Fatalf("only %d figure files written", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 || string(data[:7]) != "digraph" {
			t.Fatalf("%s is not a DOT file", e.Name())
		}
	}
}

func TestExperimentsCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments run is sizeable")
	}
	if err := run([]string{"experiments"}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSizesBuild(t *testing.T) {
	for _, f := range families {
		g, _, err := f.build(defaultSize(f.name))
		if err != nil {
			t.Fatalf("%s default build: %v", f.name, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("%s default build is empty", f.name)
		}
	}
}
