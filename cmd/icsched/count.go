package main

import (
	"fmt"
	"math/big"

	"icsched/internal/opt"
	"icsched/internal/sched"
)

// cmdCount reports how demanding IC optimality is for a family: the
// number of legal schedules (linear extensions) vs the number that are
// IC-optimal.
func cmdCount(args []string) error {
	f, size, err := parseFamily(args)
	if err != nil {
		return err
	}
	g, nonsinks, err := f.build(size)
	if err != nil {
		return err
	}
	if g.NumNodes() > opt.MaxNodes {
		return fmt.Errorf("count: %d nodes exceed the exact-oracle limit %d", g.NumNodes(), opt.MaxNodes)
	}
	l, err := opt.Analyze(g)
	if err != nil {
		return err
	}
	total := l.CountSchedules()
	optimal := l.CountOptimal()
	fmt.Printf("family %s (size %d): %s\n", f.name, size, g)
	fmt.Printf("legal schedules:      %s\n", total.String())
	fmt.Printf("IC-optimal schedules: %s\n", optimal.String())
	if total.Sign() > 0 {
		ratio := new(big.Float).Quo(new(big.Float).SetInt(optimal), new(big.Float).SetInt(total))
		fmt.Printf("fraction optimal:     %.6f\n", ratio)
	}
	// Sanity: the family's shipped schedule must be among the optimal ones
	// whenever any exist.
	if optimal.Sign() > 0 {
		ok, _, err := l.IsOptimal(sched.Complete(g, nonsinks))
		if err != nil {
			return err
		}
		fmt.Printf("shipped schedule optimal: %v\n", ok)
	}
	return nil
}
