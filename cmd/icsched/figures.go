package main

import (
	"fmt"
	"os"
	"path/filepath"

	"icsched/internal/blocks"
	"icsched/internal/butterfly"
	"icsched/internal/coarsen"
	"icsched/internal/compose"
	"icsched/internal/compute/zt"
	"icsched/internal/dag"
	"icsched/internal/dltdag"
	"icsched/internal/matmuldag"
	"icsched/internal/mesh"
	"icsched/internal/prefix"
	"icsched/internal/trees"
	"icsched/internal/workflows"
)

// cmdFigures writes one DOT file per paper figure into the given
// directory, regenerating the paper's structural exhibits.
func cmdFigures(args []string) error {
	dir := "figures"
	if len(args) >= 1 {
		dir = args[0]
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	figs, err := paperFigures()
	if err != nil {
		return err
	}
	for _, f := range figs {
		path := filepath.Join(dir, f.file)
		if err := os.WriteFile(path, []byte(f.g.DOT(f.title)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %-28s %s (%s)\n", path, f.g, f.title)
	}
	return nil
}

type figure struct {
	file  string
	title string
	g     *dag.Dag
}

// paperFigures assembles every dag figure of the paper.
func paperFigures() ([]figure, error) {
	var figs []figure
	add := func(file, title string, g *dag.Dag) {
		figs = append(figs, figure{file: file, title: title, g: g})
	}
	fromComposer := func(c *compose.Composer) (*dag.Dag, error) { return c.Dag() }

	add("fig01a_vee.dot", "Fig 1: the Vee dag V", blocks.Vee())
	add("fig01b_lambda.dot", "Fig 1: the Lambda dag Λ", blocks.Lambda())

	d, err := trees.Diamond(trees.CompleteOutTree(2, 2))
	if err != nil {
		return nil, err
	}
	g, err := fromComposer(d)
	if err != nil {
		return nil, err
	}
	add("fig02_diamond.dot", "Fig 2: expansion-reduction diamond", g)

	fineOut := trees.CompleteOutTree(2, 2)
	dc, err := trees.Diamond(fineOut)
	if err != nil {
		return nil, err
	}
	fine, err := fromComposer(dc)
	if err != nil {
		return nil, err
	}
	part, k, err := trees.DiamondTruncationPartition(fineOut, dc, []dag.NodeID{2})
	if err != nil {
		return nil, err
	}
	coarse, _, err := coarsen.Quotient(fine, part, k)
	if err != nil {
		return nil, err
	}
	add("fig03_coarsened_diamond.dot", "Fig 3: coarsened diamond", coarse)

	alt, err := trees.Alternating([]trees.Part{
		trees.InPart(trees.CompleteInTree(2, 1)),
		trees.OutPart(trees.CompleteOutTree(2, 1)),
		trees.InPart(trees.CompleteInTree(2, 2)),
	})
	if err != nil {
		return nil, err
	}
	g, err = fromComposer(alt)
	if err != nil {
		return nil, err
	}
	add("fig04_alternating.dot", "Fig 4: alternating expansion-reduction", g)

	add("fig05a_outmesh.dot", "Fig 5: out-mesh", mesh.OutMesh(5))
	add("fig05b_inmesh.dot", "Fig 5: in-mesh (pyramid)", mesh.InMesh(5))

	wc, err := mesh.OutMeshAsWComposition(5)
	if err != nil {
		return nil, err
	}
	g, err = fromComposer(wc)
	if err != nil {
		return nil, err
	}
	add("fig06_outmesh_wdags.dot", "Fig 6: out-mesh as W-dag composition", g)

	mpart, mk, _ := coarsen.MeshBlocks(8, 2)
	mq, _, err := coarsen.Quotient(mesh.OutMesh(8), mpart, mk)
	if err != nil {
		return nil, err
	}
	add("fig07_coarsened_outmesh.dot", "Fig 7: coarsened out-mesh", mq)

	add("fig08_butterfly_block.dot", "Fig 8: butterfly building block B", blocks.Butterfly())
	add("fig09a_butterfly2.dot", "Fig 9: 2-dimensional butterfly B2", butterfly.Network(2))
	add("fig09b_butterfly3.dot", "Fig 9: 3-dimensional butterfly B3", butterfly.Network(3))

	bc, err := butterfly.AsBComposition(3)
	if err != nil {
		return nil, err
	}
	g, err = fromComposer(bc)
	if err != nil {
		return nil, err
	}
	add("fig10_butterfly_composed.dot", "Fig 10: B3 as composition of B blocks", g)

	add("fig11_prefix8.dot", "Fig 11: the 8-input parallel-prefix dag P8", prefix.Network(8))

	nc, err := prefix.AsNComposition(8)
	if err != nil {
		return nil, err
	}
	g, err = fromComposer(nc)
	if err != nil {
		return nil, err
	}
	add("fig12_prefix_ndags.dot", "Fig 12: P8 as composition of N-dags", g)

	lc, err := dltdag.L(8)
	if err != nil {
		return nil, err
	}
	g, err = fromComposer(lc)
	if err != nil {
		return nil, err
	}
	add("fig13a_dlt8.dot", "Fig 13: the 8-input DLT dag L8", g)

	fineL8, cpart, ck, err := dltdag.CoarsenedL8()
	if err != nil {
		return nil, err
	}
	cq, _, err := coarsen.Quotient(fineL8, cpart, ck)
	if err != nil {
		return nil, err
	}
	add("fig13b_dlt8_coarse.dot", "Fig 13: coarsened L8", cq)

	add("fig14_vee3.dot", "Fig 14: the 3-prong Vee dag V3", blocks.VeeD(3))

	lp, err := dltdag.LPrime(8)
	if err != nil {
		return nil, err
	}
	g, err = fromComposer(lp)
	if err != nil {
		return nil, err
	}
	add("fig15_dlt8_alt.dot", "Fig 15: the alternative DLT dag L'8", g)

	// Fig 15 computational refinement: the power-tree with emit arcs.
	pt, _, _, _, err := zt.PowerTreeDag(8)
	if err != nil {
		return nil, err
	}
	add("fig15b_powertree.dot", "Fig 15 (refined): power tree with multiply tasks", pt)

	gp, err := dltdag.L(8)
	if err != nil {
		return nil, err
	}
	g, err = fromComposer(gp)
	if err != nil {
		return nil, err
	}
	add("fig16_graphpaths.dot", "Fig 16: paths-in-a-graph dag (L8 with matrix tasks)", g)

	mm, err := matmuldag.New()
	if err != nil {
		return nil, err
	}
	g, err = fromComposer(mm)
	if err != nil {
		return nil, err
	}
	add("fig17_matmul.dot", "Fig 17: the matrix-multiplication dag M", g)

	// Bonus exhibits used by the experiments.
	add("extra_montage.dot", "Synthetic Montage workflow", workflows.Montage(6))
	add("extra_grid.dot", "Rectangular wavefront mesh", mesh.Grid(4, 6))
	return figs, nil
}
