package main

import (
	"fmt"
	"sort"

	"icsched/internal/blocks"
	"icsched/internal/butterfly"
	"icsched/internal/dag"
	"icsched/internal/dltdag"
	"icsched/internal/matmuldag"
	"icsched/internal/mesh"
	"icsched/internal/prefix"
	"icsched/internal/sched"
	"icsched/internal/trees"
	"icsched/internal/workflows"
)

// family describes one buildable dag family with its IC-optimal schedule.
type family struct {
	name  string
	desc  string
	sizes string // meaning of the size parameter
	build func(size int) (*dag.Dag, []dag.NodeID, error)
}

// nonsinkOf adapts a composer-style result.
func composed(g *dag.Dag, order []dag.NodeID) (*dag.Dag, []dag.NodeID, error) {
	return g, sched.NonsinkPrefix(g, order), nil
}

var families = []family{
	{
		name:  "vee",
		desc:  "the Vee building block V of Fig. 1 (degree = size)",
		sizes: "out-degree (default 2)",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := blocks.VeeD(size)
			return g, blocks.SourcesLeftToRight(g), nil
		},
	},
	{
		name:  "lambda",
		desc:  "the Lambda building block Λ of Fig. 1 (degree = size)",
		sizes: "in-degree (default 2)",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := blocks.LambdaD(size)
			return g, blocks.SourcesLeftToRight(g), nil
		},
	},
	{
		name:  "w",
		desc:  "the W-dag of §4",
		sizes: "number of sources",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := blocks.W(size)
			return g, blocks.SourcesLeftToRight(g), nil
		},
	},
	{
		name:  "n",
		desc:  "the N-dag of §6.1 with its anchor source",
		sizes: "number of sources",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := blocks.N(size)
			return g, blocks.SourcesLeftToRight(g), nil
		},
	},
	{
		name:  "cycle",
		desc:  "the bipartite cycle-dag C_s of §7",
		sizes: "number of sources (>= 2)",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := blocks.Cycle(size)
			return g, blocks.SourcesLeftToRight(g), nil
		},
	},
	{
		name:  "outtree",
		desc:  "complete binary out-tree (expansive phase of §3)",
		sizes: "height",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := trees.CompleteOutTree(2, size)
			return g, trees.OutTreeNonsinks(g), nil
		},
	},
	{
		name:  "intree",
		desc:  "complete binary in-tree (reductive phase of §3)",
		sizes: "height",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := trees.CompleteInTree(2, size)
			ns, err := trees.InTreeNonsinks(g)
			return g, ns, err
		},
	},
	{
		name:  "diamond",
		desc:  "the diamond dag of Fig. 2 (out-tree ⇑ mirror in-tree)",
		sizes: "out-tree height",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			c, err := trees.Diamond(trees.CompleteOutTree(2, size))
			if err != nil {
				return nil, nil, err
			}
			g, err := c.Dag()
			if err != nil {
				return nil, nil, err
			}
			order, err := c.Schedule()
			if err != nil {
				return nil, nil, err
			}
			return composed(g, order)
		},
	},
	{
		name:  "outmesh",
		desc:  "the out-mesh (wavefront) dag of Fig. 5",
		sizes: "diagonal levels",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			return mesh.OutMesh(size), mesh.OutMeshNonsinks(size), nil
		},
	},
	{
		name:  "inmesh",
		desc:  "the in-mesh (pyramid) dag of Fig. 5",
		sizes: "diagonal levels",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			return mesh.InMesh(size), mesh.InMeshNonsinks(size), nil
		},
	},
	{
		name:  "grid",
		desc:  "the full rectangular wavefront mesh (square)",
		sizes: "side length",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			return mesh.Grid(size, size), mesh.GridDiagonalNonsinks(size, size), nil
		},
	},
	{
		name:  "butterfly",
		desc:  "the d-dimensional butterfly network B_d of Fig. 9",
		sizes: "dimension d",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			return butterfly.Network(size), butterfly.Nonsinks(size), nil
		},
	},
	{
		name:  "prefix",
		desc:  "the parallel-prefix dag P_n of Fig. 11",
		sizes: "inputs n",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			return prefix.Network(size), prefix.Nonsinks(size), nil
		},
	},
	{
		name:  "dlt",
		desc:  "the DLT dag L_n of Fig. 13 (prefix ⇑ in-tree)",
		sizes: "inputs n (power of two)",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			c, err := dltdag.L(size)
			if err != nil {
				return nil, nil, err
			}
			g, err := c.Dag()
			if err != nil {
				return nil, nil, err
			}
			order, err := c.Schedule()
			if err != nil {
				return nil, nil, err
			}
			return composed(g, order)
		},
	},
	{
		name:  "dlt2",
		desc:  "the alternative DLT dag L'_n of Fig. 15 (V₃-tree ⇑ in-tree)",
		sizes: "inputs n (power of two >= 4)",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			c, err := dltdag.LPrime(size)
			if err != nil {
				return nil, nil, err
			}
			g, err := c.Dag()
			if err != nil {
				return nil, nil, err
			}
			order, err := c.Schedule()
			if err != nil {
				return nil, nil, err
			}
			return composed(g, order)
		},
	},
	{
		name:  "matmul",
		desc:  "the 2×2 matrix-multiplication dag M of Fig. 17",
		sizes: "ignored",
		build: func(int) (*dag.Dag, []dag.NodeID, error) {
			c, err := matmuldag.New()
			if err != nil {
				return nil, nil, err
			}
			g, err := c.Dag()
			if err != nil {
				return nil, nil, err
			}
			order, err := c.Schedule()
			if err != nil {
				return nil, nil, err
			}
			return composed(g, order)
		},
	},
	{
		name:  "forkjoin",
		desc:  "synthetic fork-join workflow (width 4)",
		sizes: "stages",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := workflows.ForkJoin(size, 4)
			return g, sched.AnyTopoNonsinks(g), nil
		},
	},
	{
		name:  "montage",
		desc:  "synthetic Montage-style mosaic workflow",
		sizes: "input images",
		build: func(size int) (*dag.Dag, []dag.NodeID, error) {
			g := workflows.Montage(size)
			return g, sched.AnyTopoNonsinks(g), nil
		},
	},
}

func familyByName(name string) (family, error) {
	for _, f := range families {
		if f.name == name {
			return f, nil
		}
	}
	var names []string
	for _, f := range families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return family{}, fmt.Errorf("unknown family %q (have: %v)", name, names)
}

// defaultSize gives each family a sensible demo size.
func defaultSize(name string) int {
	switch name {
	case "vee", "lambda":
		return 2
	case "w", "n", "cycle":
		return 4
	case "outtree", "intree", "diamond":
		return 3
	case "outmesh", "inmesh":
		return 6
	case "grid":
		return 5
	case "butterfly":
		return 3
	case "prefix", "dlt", "dlt2":
		return 8
	case "forkjoin":
		return 3
	case "montage":
		return 6
	default:
		return 4
	}
}
