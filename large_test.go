// Large-instance checks: the closed-form eligibility profiles hold far
// beyond oracle sizes, so the families' IC-optimal schedules scale.
package icsched_test

import (
	"testing"

	"icsched/internal/butterfly"
	"icsched/internal/dltdag"
	"icsched/internal/mesh"
	"icsched/internal/prefix"
	"icsched/internal/sched"
)

func TestLargeButterflyProfileIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	d := 10 // 11·1024 = 11264 nodes
	g := butterfly.Network(d)
	prof, err := sched.NonsinkProfile(g, butterfly.Nonsinks(d))
	if err != nil {
		t.Fatal(err)
	}
	want := butterfly.Profile(d)
	for x := range want {
		if prof[x] != want[x] {
			t.Fatalf("B_%d profile diverges at %d: %d vs %d", d, x, prof[x], want[x])
		}
	}
}

func TestLargePrefixProfileIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	n := 4096 // 13·4096 nodes
	g := prefix.Network(n)
	prof, err := sched.NonsinkProfile(g, prefix.Nonsinks(n))
	if err != nil {
		t.Fatal(err)
	}
	for x, e := range prof {
		if e != n {
			t.Fatalf("P_%d profile not constant at step %d: %d", n, x, e)
		}
	}
}

func TestLargeMeshWavefrontProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	levels := 256 // 32896 nodes
	g := mesh.OutMesh(levels)
	prof, err := sched.NonsinkProfile(g, mesh.OutMeshNonsinks(levels))
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal-by-diagonal: while executing diagonal i (0-based), the
	// eligible count stays i+1 until the diagonal's last node completes
	// two children, bumping it to i+2.  Check the per-diagonal maxima.
	x := 0
	for i := 0; i+1 < levels; i++ {
		for j := 0; j <= i; j++ {
			x++
			want := i + 1
			if j == i {
				want = i + 2
			}
			if prof[x] != want {
				t.Fatalf("mesh profile at diag %d offset %d: %d, want %d", i, j, prof[x], want)
			}
		}
	}
}

func TestLargeDLTSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	c, err := dltdag.L(1024)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.Dag()
	if err != nil {
		t.Fatal(err)
	}
	order, err := c.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g, order); err != nil {
		t.Fatalf("L_1024 schedule invalid: %v", err)
	}
}
