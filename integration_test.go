// Cross-module integration tests: each scenario drives several packages
// end-to-end the way a downstream user would — family generators feeding
// the composition machinery, the oracle, the heuristics, the simulator,
// the executor, and the serialization layer together.
package icsched_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"icsched/internal/batch"
	"icsched/internal/butterfly"
	"icsched/internal/coarsen"
	"icsched/internal/compute/integrate"
	"icsched/internal/dag"
	"icsched/internal/dagio"
	"icsched/internal/dltdag"
	"icsched/internal/exec"
	"icsched/internal/heur"
	"icsched/internal/icsim"
	"icsched/internal/mesh"
	"icsched/internal/opt"
	"icsched/internal/prefix"
	"icsched/internal/sched"
	"icsched/internal/trees"
	"icsched/internal/workflows"
)

// TestEveryFamilyThroughSimulatorAndExecutor pushes each paper family
// through the full pipeline: generate → IC-optimal schedule → simulate on
// heterogeneous clients → execute on a worker pool → serialize/restore.
func TestEveryFamilyThroughSimulatorAndExecutor(t *testing.T) {
	cases := map[string]struct {
		g        *dag.Dag
		nonsinks []dag.NodeID
	}{
		"outmesh":   {mesh.OutMesh(10), mesh.OutMeshNonsinks(10)},
		"inmesh":    {mesh.InMesh(10), mesh.InMeshNonsinks(10)},
		"grid":      {mesh.Grid(7, 9), mesh.GridDiagonalNonsinks(7, 9)},
		"butterfly": {butterfly.Network(4), butterfly.Nonsinks(4)},
		"prefix":    {prefix.Network(16), prefix.Nonsinks(16)},
	}
	// Composed families.
	if c, err := trees.Diamond(trees.CompleteOutTree(2, 4)); err != nil {
		t.Fatal(err)
	} else {
		g, err := c.Dag()
		if err != nil {
			t.Fatal(err)
		}
		order, err := c.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		cases["diamond"] = struct {
			g        *dag.Dag
			nonsinks []dag.NodeID
		}{g, sched.NonsinkPrefix(g, order)}
	}
	if c, err := dltdag.L(16); err != nil {
		t.Fatal(err)
	} else {
		g, err := c.Dag()
		if err != nil {
			t.Fatal(err)
		}
		order, err := c.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		cases["dlt"] = struct {
			g        *dag.Dag
			nonsinks []dag.NodeID
		}{g, sched.NonsinkPrefix(g, order)}
	}

	for name, tc := range cases {
		order := sched.Complete(tc.g, tc.nonsinks)
		if err := sched.Validate(tc.g, order); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Simulate.
		res, err := icsim.Run(tc.g, heur.Static("IC-OPTIMAL", order), icsim.Config{
			Clients: 6,
			Speeds:  []float64{2, 2, 1, 1, 0.5, 0.5},
			Seed:    3,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Completed != tc.g.NumNodes() {
			t.Fatalf("%s: simulation incomplete", name)
		}
		// Execute on a worker pool, counting task invocations.
		count := make([]int32, tc.g.NumNodes())
		rank, err := exec.RankFromOrder(tc.g, order)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Run(tc.g, rank, 4, func(v dag.NodeID) error {
			count[v]++
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v, c := range count {
			if c != 1 {
				t.Fatalf("%s: node %d ran %d times", name, v, c)
			}
		}
		// Serialize round trip preserves the schedule's legality.
		data, err := dagio.MarshalJSON(tc.g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := dagio.UnmarshalJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sched.Validate(back, order); err != nil {
			t.Fatalf("%s: schedule invalid after round trip: %v", name, err)
		}
	}
}

// TestDualityAcrossFamilies drives Theorem 2.2 end-to-end: take each
// family's IC-optimal schedule, build the dual order, and oracle-verify
// it on the dual dag.
func TestDualityAcrossFamilies(t *testing.T) {
	cases := map[string]struct {
		g        *dag.Dag
		nonsinks []dag.NodeID
	}{
		"outmesh5":   {mesh.OutMesh(5), mesh.OutMeshNonsinks(5)},
		"butterfly2": {butterfly.Network(2), butterfly.Nonsinks(2)},
		"prefix4":    {prefix.Network(4), prefix.Nonsinks(4)},
		"grid34":     {mesh.Grid(3, 4), mesh.GridDiagonalNonsinks(3, 4)},
	}
	for name, tc := range cases {
		dualOrder, err := sched.DualOrder(tc.g, tc.nonsinks)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d := tc.g.Dual()
		l, err := opt.Analyze(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ok, step, err := l.IsOptimal(sched.Complete(d, dualOrder))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Fatalf("%s: Theorem 2.2 dual schedule not optimal at step %d", name, step)
		}
	}
}

// TestCoarsenedMeshExecutesCorrectly closes the loop of §4: coarsen a
// wavefront mesh, schedule the quotient, refine back to a fine schedule,
// and execute a real accumulation over it.
func TestCoarsenedMeshExecutesCorrectly(t *testing.T) {
	levels := 12
	g := mesh.OutMesh(levels)
	part, k, _ := coarsen.MeshBlocks(levels, 3)
	q, _, err := coarsen.Quotient(g, part, k)
	if err != nil {
		t.Fatal(err)
	}
	fine := coarsen.Refine(g, part, q.TopoOrder())
	if err := sched.Validate(g, fine); err != nil {
		t.Fatal(err)
	}
	// Pascal's-triangle accumulation down the mesh: node (i,j) sums its
	// parents; sources start at 1.  Row i then holds binomial C(i, j).
	vals := make([]int64, g.NumNodes())
	rank, err := exec.RankFromOrder(g, fine)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(g, rank, 4, func(v dag.NodeID) error {
		if g.IsSource(v) {
			vals[v] = 1
			return nil
		}
		var sum int64
		for _, p := range g.Parents(v) {
			sum += vals[p]
		}
		vals[v] = sum
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	binom := func(n, k int) int64 {
		out := int64(1)
		for i := 0; i < k; i++ {
			out = out * int64(n-i) / int64(i+1)
		}
		return out
	}
	for i := 0; i < levels; i++ {
		for j := 0; j <= i; j++ {
			if vals[mesh.TriID(i, j)] != binom(i, j) {
				t.Fatalf("mesh value (%d,%d) = %d, want C(%d,%d)=%d",
					i, j, vals[mesh.TriID(i, j)], i, j, binom(i, j))
			}
		}
	}
}

// TestBatchVersusPerTaskOnWorkflows compares the [20] batched regimen to
// per-task allocation across synthetic workflows: batching is legal and
// never executes more rounds than ceil(n / width) lower-bounded by the
// critical path.
func TestBatchVersusPerTaskOnWorkflows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gs := []*dag.Dag{
		workflows.ForkJoin(4, 5),
		workflows.MapReduce(6, 3),
		workflows.Montage(8),
		dag.RandomLayered(rng, []int{4, 8, 8, 4, 1}, 3),
	}
	for i, g := range gs {
		for _, w := range []int{1, 3, 8} {
			plan, err := batch.Greedy(g, w)
			if err != nil {
				t.Fatalf("dag %d width %d: %v", i, w, err)
			}
			if err := plan.Validate(g); err != nil {
				t.Fatalf("dag %d width %d: %v", i, w, err)
			}
			minRounds := g.CriticalPathLen()
			if ceil := (g.NumNodes() + w - 1) / w; ceil > minRounds {
				minRounds = ceil
			}
			if plan.Rounds() < minRounds {
				t.Fatalf("dag %d width %d: %d rounds beats the lower bound %d",
					i, w, plan.Rounds(), minRounds)
			}
		}
	}
}

// TestIntegrationPipelineDeterminism runs the full §3.2 pipeline twice
// with different worker counts and demands bit-equal results.
func TestIntegrationPipelineDeterminism(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(7*x) / (1 + x*x) }
	opts := func(w int) integrate.Options {
		return integrate.Options{Rule: integrate.Simpson, Tol: 1e-9, Workers: w}
	}
	a, err := integrate.Integrate(f, -2, 2, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := integrate.Integrate(f, -2, 2, opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatalf("worker counts disagree: %v vs %v", a.Value, b.Value)
	}
	// And the dag artifacts agree structurally.
	if a.Diamond.NumNodes() != b.Diamond.NumNodes() {
		t.Fatal("diamond shapes differ between runs")
	}
}

// TestEdgeListWorkflowThroughScheduler loads a DAGMan-style edge list and
// schedules it with every policy, mimicking the PRIO-tool flow of [19].
func TestEdgeListWorkflowThroughScheduler(t *testing.T) {
	src := bytes.NewBufferString(`
# toy condor workflow
fetch preprocess
preprocess simA
preprocess simB
simA analyze
simB analyze
analyze publish
`)
	g, err := dagio.ReadEdgeList(src)
	if err != nil {
		t.Fatal(err)
	}
	l, err := opt.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	order, ok := l.OptimalSchedule()
	if !ok {
		t.Fatal("toy workflow admits an IC-optimal schedule")
	}
	for _, p := range heur.Standard(3) {
		ho, err := heur.RunOrder(g, p)
		if err != nil {
			t.Fatal(err)
		}
		hp, err := sched.Profile(g, ho)
		if err != nil {
			t.Fatal(err)
		}
		op, err := sched.Profile(g, order)
		if err != nil {
			t.Fatal(err)
		}
		for step := range hp {
			if hp[step] > op[step] {
				t.Fatalf("%s beats the oracle schedule at step %d", p.Name(), step)
			}
		}
	}
}
